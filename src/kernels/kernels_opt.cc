/**
 * @file
 * Table IV case studies.
 *
 * Hand-optimized xloop.or kernels (adpcm/dither/sha "-or-opt"):
 * instructions are rescheduled to shrink the inter-iteration critical
 * path of each CIR — cross-iteration state is updated as early as
 * possible, loop-invariant constants are hoisted, and LLFU ops on the
 * CIR chain are replaced with shift/add forms (paper Section IV-G).
 *
 * Loop-transformed "-uc" variants (bfs/dither/kmeans/qsort/rsort):
 * privatize-and-reduce, split (level-synchronous) worklists, and
 * row-private error diffusion turn ordered/atomic loops into
 * unordered-concurrent ones.
 */

#include <queue>

#include "common/log.h"
#include "common/rng.h"
#include "kernels/kernel.h"

namespace xloops {

namespace {

// ----------------------------------------------------------- adpcm-or-opt

const char *adpcmOptSrc = R"(
  li r1, 0
  li r2, 1024
  la r5, deltas
  la r6, pcm
  la r7, steptab
  la r8, idxtab
  li r3, 0               # valpred (CIR)
  li r4, 0               # index (CIR)
  li r28, 88             # hoisted constants
  li r29, 32767
  li r30, -32768
body:
  lw r10, 0(r5)          # delta
  slli r11, r4, 2
  add r11, r7, r11
  lw r12, 0(r11)         # step = steptab[old index]
  # index chain first: the CIR the next iteration needs earliest
  slli r17, r10, 2
  add r17, r8, r17
  lw r18, 0(r17)
  add r4, r4, r18
  bge r4, r0, inn
  li r4, 0
inn:
  ble r4, r28, ihi
  mov r4, r28
ihi:
  # valpred chain
  srli r13, r12, 3
  andi r14, r10, 4
  beqz r14, d4
  add r13, r13, r12
d4:
  andi r14, r10, 2
  beqz r14, d2
  srli r15, r12, 1
  add r13, r13, r15
d2:
  andi r14, r10, 1
  beqz r14, d1
  srli r15, r12, 2
  add r13, r13, r15
d1:
  andi r14, r10, 8
  beqz r14, dpos
  sub r3, r3, r13
  j dclamp
dpos:
  add r3, r3, r13
dclamp:
  ble r3, r29, chi
  mov r3, r29
chi:
  bge r3, r30, clo
  mov r3, r30
clo:
  sw r3, 0(r6)
  addiu.xi r5, 4
  addiu.xi r6, 4
  xloop.or r1, r2, body
  halt
  .data
deltas:  .space 4096
pcm:     .space 4096
steptab: .space 356
idxtab:  .space 64
)";

// ---------------------------------------------------------- dither-or-opt

const char *ditherOptSrc = R"(
  la r5, gray
  la r6, bw
  li r9, 0
  li r20, 32
  li r21, 127            # hoisted constant
rowloop:
  li r3, 0               # err (CIR)
  li r1, 0
  li r2, 64
body:
  lw r10, 0(r5)
  add r10, r10, r3
  slt r12, r21, r10      # out bit
  slli r14, r12, 8
  sub r14, r14, r12      # out*255 without the multiplier
  sub r3, r10, r14
  srai r3, r3, 1         # CIR written as early as possible
  sw r12, 0(r6)          # store moved off the critical path
  addiu.xi r5, 4
  addiu.xi r6, 4
  xloop.or r1, r2, body
  addi r9, r9, 1
  blt r9, r20, rowloop
  halt
  .data
gray: .space 8192
bw:   .space 8192
)";

// ------------------------------------------------------------- sha-or-opt

const char *shaOptSrc = R"(
  la r5, wsched
  la r6, digest
  li r9, 0
  li r20, 4
blockloop:
  li r3, 0x67452301
  li r4, 0xEFCDAB89
  li r7, 0x98BADCFE
  li r8, 0x10325476
  li r21, 0xC3D2E1F0
  li r1, 0
  li r2, 80
body:
  li r10, 20
  bge r1, r10, f2
  and r11, r4, r7
  not r12, r4
  and r12, r12, r8
  or r11, r11, r12
  li r13, 0x5A827999
  j fdone
f2:
  li r10, 40
  bge r1, r10, f3
  xor r11, r4, r7
  xor r11, r11, r8
  li r13, 0x6ED9EBA1
  j fdone
f3:
  li r10, 60
  bge r1, r10, f4
  and r11, r4, r7
  and r12, r4, r8
  or r11, r11, r12
  and r12, r7, r8
  or r11, r11, r12
  li r13, 0x8F1BBCDC
  j fdone
f4:
  xor r11, r4, r7
  xor r11, r11, r8
  li r13, 0xCA62C1D6
fdone:
  slli r14, r3, 5
  srli r15, r3, 27
  or r14, r14, r15       # rotl(old a, 5)
  add r14, r14, r11
  add r14, r14, r13      # temp partial
  mov r22, r21           # save old e
  mov r21, r8            # e = d  -- CIRs written early so the next
  mov r8, r7             # d = c     iteration's f() can start sooner
  slli r15, r4, 30
  srli r16, r4, 2
  or r7, r15, r16        # c = rotl(b, 30)
  mov r4, r3             # b = a
  lw r15, 0(r5)
  add r14, r14, r22
  add r14, r14, r15
  mov r3, r14            # a = temp (only CIR still written late)
  addiu.xi r5, 4
  xloop.or r1, r2, body
  lw r10, 0(r6)
  add r10, r10, r3
  sw r10, 0(r6)
  lw r10, 4(r6)
  add r10, r10, r4
  sw r10, 4(r6)
  lw r10, 8(r6)
  add r10, r10, r7
  sw r10, 8(r6)
  lw r10, 12(r6)
  add r10, r10, r8
  sw r10, 12(r6)
  lw r10, 16(r6)
  add r10, r10, r21
  sw r10, 16(r6)
  addi r9, r9, 1
  blt r9, r20, blockloop
  halt
  .data
wsched: .space 1280
digest: .space 20
)";

// ---------------------------------------------------------------- bfs-uc

// Level-synchronous BFS: a serial loop over levels, an xloop.uc over
// the current frontier, amomin relaxation, and a split (two-buffer)
// worklist filled through an AMO cursor.
const char *bfsUcSrc = R"(
  la r5, wla             # current frontier
  la r15, wlb            # next frontier
  la r6, adjoff
  la r7, adjlist
  la r8, dist
  la r9, ntail
  li r27, 1              # current frontier size
levels:
  beqz r27, alldone
  sw r0, 0(r9)           # next tail = 0
  li r1, 0
  mov r2, r27
body:
  slli r10, r1, 2
  add r10, r5, r10
  lw r11, 0(r10)         # u
  slli r12, r11, 2
  add r13, r6, r12
  lw r14, 0(r13)
  lw r16, 4(r13)
  add r17, r8, r12
  lw r18, 0(r17)
  addi r18, r18, 1
nbr:
  bge r14, r16, bdone
  slli r19, r14, 2
  add r19, r7, r19
  lw r20, 0(r19)
  slli r21, r20, 2
  add r21, r8, r21
  amomin r22, r18, (r21)
  ble r22, r18, nonext
  li r23, 1
  amoadd r24, r23, (r9)
  slli r25, r24, 2
  add r25, r15, r25
  sw r20, 0(r25)         # next[slot] = v
nonext:
  addi r14, r14, 1
  j nbr
bdone:
  xloop.uc r1, r2, body
  lw r27, 0(r9)          # next frontier size
  mov r26, r5            # swap frontier buffers
  mov r5, r15
  mov r15, r26
  j levels
alldone:
  halt
  .data
wla:     .space 8192
wlb:     .space 8192
adjoff:  .space 260
adjlist: .space 1024
dist:    .space 256
ntail:   .word 0
)";

// -------------------------------------------------------------- dither-uc

// Row-private error diffusion: the outer row loop becomes the
// specialized unordered loop; each iteration runs a whole row.
const char *ditherUcSrc = R"(
  la r5, gray
  la r6, bw
  li r1, 0
  li r2, 32              # rows
body:
  slli r10, r1, 8        # row * 64 * 4 bytes
  add r11, r5, r10
  add r12, r6, r10
  li r3, 0               # row-private err
  li r13, 0
  li r14, 64
cols:
  lw r15, 0(r11)
  add r15, r15, r3
  li r16, 127
  slt r17, r16, r15
  sw r17, 0(r12)
  slli r18, r17, 8
  sub r18, r18, r17
  sub r3, r15, r18
  srai r3, r3, 1
  addi r11, r11, 4
  addi r12, r12, 4
  addi r13, r13, 1
  blt r13, r14, cols
  xloop.uc r1, r2, body
  halt
  .data
gray: .space 8192
bw:   .space 8192
)";

// -------------------------------------------------------------- kmeans-uc

// Privatize-and-reduce: the uc loop stores each object's best
// distance; a serial reduction accumulates the total.
const char *kmeansUcSrc = R"(
  li r1, 0
  li r2, 100
  la r5, ptx
  la r6, pty
  la r7, cenx
  la r8, ceny
  la r9, member
  la r26, bestd
body:
  lw r10, 0(r5)
  lw r11, 0(r6)
  li r12, 0
  li r13, 4
  li r14, 0x7fffff
  li r15, 0
cloop:
  slli r16, r12, 2
  add r17, r7, r16
  lw r17, 0(r17)
  add r18, r8, r16
  lw r18, 0(r18)
  sub r17, r10, r17
  sub r18, r11, r18
  mul r17, r17, r17
  mul r18, r18, r18
  add r17, r17, r18
  bge r17, r14, cnext
  mov r14, r17
  mov r15, r12
cnext:
  addi r12, r12, 1
  blt r12, r13, cloop
  slli r16, r1, 2
  add r17, r9, r16
  sw r15, 0(r17)
  add r17, r26, r16
  sw r14, 0(r17)         # privatized best distance
  addiu.xi r5, 4
  addiu.xi r6, 4
  xloop.uc r1, r2, body
  # serial reduction
  li r3, 0
  li r13, 0
  li r12, 100
reduce:
  slli r16, r13, 2
  add r17, r26, r16
  lw r18, 0(r17)
  add r3, r3, r18
  addi r13, r13, 1
  blt r13, r12, reduce
  la r19, total
  sw r3, 0(r19)
  halt
  .data
ptx:    .space 400
pty:    .space 400
cenx:   .space 16
ceny:   .space 16
member: .space 400
bestd:  .space 400
total:  .word 0
)";

// --------------------------------------------------------------- qsort-uc

// Split worklists: the dynamic-bound loop becomes a level-synchronous
// pair of buffers with a plain xloop.uc over each level.
const char *qsortUcSrc = R"(
  la r5, wloa
  la r6, whia
  la r15, wlob
  la r16, whib
  la r7, qdata
  la r9, qtail
  li r27, 1              # current level size
levels:
  beqz r27, alldone
  sw r0, 0(r9)
  li r1, 0
  mov r2, r27
body:
  slli r10, r1, 2
  add r11, r5, r10
  lw r12, 0(r11)         # lo
  add r11, r6, r10
  lw r13, 0(r11)         # hi
  bge r12, r13, qdone
  slli r14, r13, 2
  add r14, r7, r14
  lw r17, 0(r14)         # pivot
  mov r18, r12           # store
  mov r19, r12           # scan
ploop:
  bge r19, r13, pdone
  slli r20, r19, 2
  add r20, r7, r20
  lw r21, 0(r20)
  bge r21, r17, pnext
  slli r22, r18, 2
  add r22, r7, r22
  lw r23, 0(r22)
  sw r21, 0(r22)
  sw r23, 0(r20)
  addi r18, r18, 1
pnext:
  addi r19, r19, 1
  j ploop
pdone:
  slli r22, r18, 2
  add r22, r7, r22
  lw r23, 0(r22)
  sw r17, 0(r22)
  sw r23, 0(r14)
  addi r24, r18, -1
  bge r12, r24, nol
  li r21, 1
  amoadd r25, r21, (r9)
  slli r26, r25, 2
  add r20, r15, r26
  sw r12, 0(r20)
  add r20, r16, r26
  sw r24, 0(r20)
nol:
  addi r24, r18, 1
  bge r24, r13, qdone
  li r21, 1
  amoadd r25, r21, (r9)
  slli r26, r25, 2
  add r20, r15, r26
  sw r24, 0(r20)
  add r20, r16, r26
  sw r13, 0(r20)
qdone:
  xloop.uc r1, r2, body
  lw r27, 0(r9)
  mov r28, r5            # swap both worklist buffers
  mov r5, r15
  mov r15, r28
  mov r28, r6
  mov r6, r16
  mov r16, r28
  j levels
alldone:
  halt
  .data
wloa:  .space 2048
whia:  .space 2048
wlob:  .space 2048
whib:  .space 2048
qdata: .space 1024
qtail: .word 0
)";

// --------------------------------------------------------------- rsort-uc

// Privatize-and-reduce radix pass: 8 contiguous chunks build private
// histograms concurrently; a serial pass derives per-chunk cursors;
// a second uc loop scatters each chunk with its private cursors.
const char *rsortUcSrc = R"(
  li r1, 0
  li r2, 8               # chunks
  la r5, rin
  la r6, chist           # 8 x 64 private histograms
body:
  slli r10, r1, 8        # chunk * 64 elems * 4
  add r10, r5, r10
  slli r11, r1, 8        # chunk * 64 buckets * 4
  add r11, r6, r11
  li r12, 0
  li r13, 64
h1:
  lw r14, 0(r10)
  andi r15, r14, 63
  slli r15, r15, 2
  add r15, r11, r15
  lw r16, 0(r15)
  addi r16, r16, 1
  sw r16, 0(r15)
  addi r10, r10, 4
  addi r12, r12, 1
  blt r12, r13, h1
  xloop.uc r1, r2, body
  # serial: per-chunk exclusive cursors, digit-major
  la r7, ccur
  li r15, 0              # running total
  li r16, 0              # digit
  li r17, 64
dig:
  li r18, 0              # chunk
  li r19, 8
chk:
  slli r20, r18, 8
  slli r21, r16, 2
  add r20, r20, r21
  add r22, r6, r20
  lw r23, 0(r22)
  add r24, r7, r20
  sw r15, 0(r24)
  add r15, r15, r23
  addi r18, r18, 1
  blt r18, r19, chk
  addi r16, r16, 1
  blt r16, r17, dig
  # scatter, each chunk with its private cursors
  li r1, 0
  li r2, 8
  la r8, rout
body2:
  slli r10, r1, 8
  add r10, r5, r10
  slli r11, r1, 8
  add r11, r7, r11
  li r12, 0
  li r13, 64
s1:
  lw r14, 0(r10)
  andi r15, r14, 63
  slli r15, r15, 2
  add r15, r11, r15
  lw r16, 0(r15)
  addi r17, r16, 1
  sw r17, 0(r15)
  slli r16, r16, 2
  add r16, r8, r16
  sw r14, 0(r16)
  addi r10, r10, 4
  addi r12, r12, 1
  blt r12, r13, s1
  xloop.uc r1, r2, body2
  halt
  .data
rin:   .space 2048
chist: .space 2048
ccur:  .space 2048
rout:  .space 2048
)";

// -------------------------------------------------------------------------

void
adpcmSetup(MainMemory &mem, const Program &prog);

const u32 imaStep[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

const i32 imaIndex[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                          -1, -1, -1, -1, 2, 4, 6, 8};

void
adpcmSetup(MainMemory &mem, const Program &prog)
{
    Rng rng(0xadc);  // identical dataset to adpcm-or
    for (unsigned i = 0; i < 1024; i++)
        mem.writeWord(prog.symbol("deltas") + 4 * i, rng.nextBelow(16));
    for (unsigned i = 0; i < 89; i++)
        mem.writeWord(prog.symbol("steptab") + 4 * i, imaStep[i]);
    for (unsigned i = 0; i < 16; i++)
        mem.writeWord(prog.symbol("idxtab") + 4 * i,
                      static_cast<u32>(imaIndex[i]));
}

void
ditherSetup(MainMemory &mem, const Program &prog)
{
    Rng rng(0xd1f);  // identical dataset to dither-or
    for (unsigned i = 0; i < 32 * 64; i++)
        mem.writeWord(prog.symbol("gray") + 4 * i, rng.nextBelow(256));
}

void
shaSetup(MainMemory &mem, const Program &prog)
{
    Rng rng(0x5a1);  // identical dataset to sha-or
    for (unsigned b = 0; b < 4; b++) {
        u32 w[80];
        for (unsigned t = 0; t < 16; t++)
            w[t] = static_cast<u32>(rng.next());
        for (unsigned t = 16; t < 80; t++) {
            const u32 x = w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16];
            w[t] = (x << 1) | (x >> 31);
        }
        for (unsigned t = 0; t < 80; t++)
            mem.writeWord(prog.symbol("wsched") + 4 * (80 * b + t), w[t]);
    }
}

Kernel
kernelOf(const std::string &name, const std::string &patterns,
         const char *src,
         std::function<void(MainMemory &, const Program &)> setup,
         std::vector<std::pair<std::string, unsigned>> outputs)
{
    Kernel k;
    k.name = name;
    k.suite = "C";
    k.patterns = patterns;
    k.source = src;
    k.setup = std::move(setup);
    k.outputs = std::move(outputs);
    return k;
}

} // namespace

std::vector<Kernel>
makeOptKernels()
{
    std::vector<Kernel> v;

    v.push_back(kernelOf("adpcm-or-opt", "or", adpcmOptSrc, adpcmSetup,
                         {{"pcm", 1024}}));
    v.push_back(kernelOf("dither-or-opt", "or", ditherOptSrc, ditherSetup,
                         {{"bw", 32 * 64}}));
    v.push_back(kernelOf("sha-or-opt", "or", shaOptSrc, shaSetup,
                         {{"digest", 5}}));

    // bfs-uc: level-synchronous transform; dist[] is deterministic.
    {
        Kernel k = kernelOf(
            "bfs-uc", "uc", bfsUcSrc,
            [](MainMemory &mem, const Program &prog) {
                Rng rng(0xbf5);  // identical graph to bfs-uc-db
                std::vector<std::vector<u32>> adj(64);
                for (unsigned vv = 0; vv < 64; vv++) {
                    adj[vv].push_back((vv + 1) % 64);
                    for (unsigned d = 1; d < 3; d++)
                        adj[vv].push_back(rng.nextBelow(64));
                }
                u32 off = 0;
                for (unsigned vv = 0; vv < 64; vv++) {
                    mem.writeWord(prog.symbol("adjoff") + 4 * vv, off);
                    for (const u32 w : adj[vv])
                        mem.writeWord(prog.symbol("adjlist") + 4 * off++,
                                      w);
                }
                mem.writeWord(prog.symbol("adjoff") + 4 * 64, off);
                for (unsigned vv = 0; vv < 64; vv++)
                    mem.writeWord(prog.symbol("dist") + 4 * vv,
                                  vv == 0 ? 0 : 0x0fffffff);
                mem.writeWord(prog.symbol("wla"), 0);
            },
            {{"dist", 64}});
        v.push_back(std::move(k));
    }

    v.push_back(kernelOf("dither-uc", "uc", ditherUcSrc, ditherSetup,
                         {{"bw", 32 * 64}}));

    v.push_back(kernelOf(
        "kmeans-uc", "uc", kmeansUcSrc,
        [](MainMemory &mem, const Program &prog) {
            Rng rng(0x3ea5);  // identical dataset to kmeans-or
            for (unsigned i = 0; i < 100; i++) {
                mem.writeWord(prog.symbol("ptx") + 4 * i,
                              rng.nextBelow(256));
                mem.writeWord(prog.symbol("pty") + 4 * i,
                              rng.nextBelow(256));
            }
            for (unsigned c = 0; c < 4; c++) {
                mem.writeWord(prog.symbol("cenx") + 4 * c, 32 + 64 * c);
                mem.writeWord(prog.symbol("ceny") + 4 * c, 224 - 64 * c);
            }
        },
        {{"member", 100}, {"total", 1}}));

    {
        Kernel k = kernelOf(
            "qsort-uc", "uc", qsortUcSrc,
            [](MainMemory &mem, const Program &prog) {
                Rng rng(0x4507a);  // identical dataset to qsort-uc-db
                for (unsigned i = 0; i < 256; i++)
                    mem.writeWord(prog.symbol("qdata") + 4 * i,
                                  rng.nextBelow(100000));
                mem.writeWord(prog.symbol("wloa"), 0);
                mem.writeWord(prog.symbol("whia"), 255);
            },
            {{"qdata", 256}});
        k.check = [](MainMemory &mem, const Program &prog,
                     std::string &why) {
            for (unsigned i = 1; i < 256; i++) {
                if (mem.readWord(prog.symbol("qdata") + 4 * i) <
                    mem.readWord(prog.symbol("qdata") + 4 * (i - 1))) {
                    why = strf("not sorted at ", i);
                    return false;
                }
            }
            return true;
        };
        v.push_back(std::move(k));
    }

    v.push_back(kernelOf(
        "rsort-uc", "uc", rsortUcSrc,
        [](MainMemory &mem, const Program &prog) {
            Rng rng(0x4504);  // identical dataset to rsort-ua
            for (unsigned i = 0; i < 512; i++)
                mem.writeWord(prog.symbol("rin") + 4 * i,
                              rng.nextBelow(1 << 16));
        },
        {{"rout", 512}}));

    return v;
}

} // namespace xloops
