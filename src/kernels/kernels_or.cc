/**
 * @file
 * Table II kernels dominated by the ordered-through-registers (or)
 * pattern: adpcm (IMA decoder state), covar (column accumulation),
 * dither (Floyd-Steinberg error diffusion), kmeans (distance
 * accumulator), sha (SHA-1 round rotation), and symm-or (inner
 * product accumulation). All CIR chains are race-free and
 * deterministic, so outputs must match the serial golden image.
 */

#include "common/rng.h"
#include "kernels/kernel.h"

namespace xloops {

namespace {

// ------------------------------------------------------------------- adpcm

constexpr unsigned adpcmSamples = 1024;

const u32 imaStepTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

const i32 imaIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                               -1, -1, -1, -1, 2, 4, 6, 8};

const char *adpcmSrc = R"(
  li r1, 0
  li r2, 1024
  la r5, deltas
  la r6, pcm
  la r7, steptab
  la r8, idxtab
  li r3, 0               # valpred (CIR)
  li r4, 0               # index (CIR)
body:
  lw r10, 0(r5)          # delta nibble
  slli r11, r4, 2
  add r11, r7, r11
  lw r12, 0(r11)         # step = steptab[index]
  srli r13, r12, 3       # vpdiff = step >> 3
  andi r14, r10, 4
  beqz r14, d4
  add r13, r13, r12
d4:
  andi r14, r10, 2
  beqz r14, d2
  srli r15, r12, 1
  add r13, r13, r15
d2:
  andi r14, r10, 1
  beqz r14, d1
  srli r15, r12, 2
  add r13, r13, r15
d1:
  andi r14, r10, 8
  beqz r14, dpos
  sub r3, r3, r13
  j dclamp
dpos:
  add r3, r3, r13
dclamp:
  li r16, 32767
  ble r3, r16, chi
  mov r3, r16
chi:
  li r16, -32768
  bge r3, r16, clo
  mov r3, r16
clo:
  slli r17, r10, 2
  add r17, r8, r17
  lw r18, 0(r17)
  add r4, r4, r18        # index += idxtab[delta]
  bge r4, r0, inn
  li r4, 0
inn:
  li r19, 88
  ble r4, r19, ihi
  mov r4, r19
ihi:
  sw r3, 0(r6)
  addiu.xi r5, 4
  addiu.xi r6, 4
  xloop.or r1, r2, body
  halt
  .data
deltas:  .space 4096
pcm:     .space 4096
steptab: .space 356
idxtab:  .space 64
)";

Kernel
adpcm()
{
    Kernel k;
    k.name = "adpcm-or";
    k.suite = "M";
    k.patterns = "or";
    k.source = adpcmSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0xadc);
        for (unsigned i = 0; i < adpcmSamples; i++)
            mem.writeWord(prog.symbol("deltas") + 4 * i,
                          rng.nextBelow(16));
        for (unsigned i = 0; i < 89; i++)
            mem.writeWord(prog.symbol("steptab") + 4 * i,
                          imaStepTable[i]);
        for (unsigned i = 0; i < 16; i++)
            mem.writeWord(prog.symbol("idxtab") + 4 * i,
                          static_cast<u32>(imaIndexTable[i]));
    };
    k.outputs = {{"pcm", adpcmSamples}};
    return k;
}

// ------------------------------------------------------------------- covar

constexpr unsigned covRows = 32;
constexpr unsigned covCols = 8;

const char *covarSrc = R"(
  la r5, data
  la r6, meanv
  la r7, cov
  li r9, 0               # j (column)
  li r20, 8
meancol:
  li r3, 0               # sum (CIR)
  li r1, 0
  li r2, 32
  slli r10, r9, 2
  add r11, r5, r10       # &data[0][j]
mbody:
  lw r12, 0(r11)
  add r3, r3, r12        # single-instruction CIR path
  addiu.xi r11, 32
  xloop.or r1, r2, mbody
  srai r13, r3, 5        # mean = sum / 32
  slli r14, r9, 2
  add r14, r6, r14
  sw r13, 0(r14)
  addi r9, r9, 1
  blt r9, r20, meancol
  # covariance accumulation: cov[j1][j2] for j2 <= j1
  li r9, 0               # j1
covj1:
  li r21, 0              # j2
covj2:
  slli r10, r9, 2
  add r22, r6, r10
  lw r22, 0(r22)         # mean[j1]
  slli r10, r21, 2
  add r23, r6, r10
  lw r23, 0(r23)         # mean[j2]
  li r3, 0               # s (CIR)
  li r1, 0
  li r2, 32
  slli r10, r9, 2
  add r24, r5, r10       # &data[0][j1]
  slli r10, r21, 2
  add r25, r5, r10       # &data[0][j2]
cbody:
  lw r12, 0(r24)
  sub r12, r12, r22
  lw r13, 0(r25)
  sub r13, r13, r23
  mul r14, r12, r13
  add r3, r3, r14        # CIR
  addiu.xi r24, 32
  addiu.xi r25, 32
  xloop.or r1, r2, cbody
  slli r10, r9, 5        # j1 * 8 * 4
  slli r15, r21, 2
  add r10, r10, r15
  add r10, r7, r10
  sw r3, 0(r10)
  addi r21, r21, 1
  ble r21, r9, covj2
  addi r9, r9, 1
  blt r9, r20, covj1
  halt
  .data
data:  .space 1024
meanv: .space 32
cov:   .space 256
)";

Kernel
covar()
{
    Kernel k;
    k.name = "covar-or";
    k.suite = "Po";
    k.patterns = "or";
    k.source = covarSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0xc0a);
        for (unsigned i = 0; i < covRows * covCols; i++)
            mem.writeWord(prog.symbol("data") + 4 * i,
                          rng.nextBelow(200));
    };
    k.outputs = {{"meanv", covCols}, {"cov", covCols * covCols}};
    return k;
}

// ------------------------------------------------------------------ dither

constexpr unsigned ditherRows = 32;
constexpr unsigned ditherCols = 64;

const char *ditherSrc = R"(
  la r5, gray
  la r6, bw
  li r9, 0               # row
  li r20, 32
rowloop:
  li r3, 0               # err (CIR), reset per row
  li r1, 0
  li r2, 64
body:
  lw r10, 0(r5)
  add r10, r10, r3       # gray + diffused error
  li r11, 127
  slt r12, r11, r10      # out = (v > 127)
  sw r12, 0(r6)
  li r13, 255
  mul r14, r12, r13
  sub r3, r10, r14       # residual
  srai r3, r3, 1         # diffuse half to the right
  addiu.xi r5, 4
  addiu.xi r6, 4
  xloop.or r1, r2, body
  addi r9, r9, 1
  blt r9, r20, rowloop
  halt
  .data
gray: .space 8192
bw:   .space 8192
)";

Kernel
dither()
{
    Kernel k;
    k.name = "dither-or";
    k.suite = "C";
    k.patterns = "or";
    k.source = ditherSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0xd1f);
        for (unsigned i = 0; i < ditherRows * ditherCols; i++)
            mem.writeWord(prog.symbol("gray") + 4 * i,
                          rng.nextBelow(256));
    };
    k.outputs = {{"bw", ditherRows * ditherCols}};
    return k;
}

// ------------------------------------------------------------------ kmeans

constexpr unsigned kmObjects = 100;
constexpr unsigned kmClusters = 4;

const char *kmeansSrc = R"(
  li r1, 0
  li r2, 100
  la r5, ptx
  la r6, pty
  la r7, cenx
  la r8, ceny
  la r9, member
  li r3, 0               # total distance (CIR)
body:
  lw r10, 0(r5)          # x
  lw r11, 0(r6)          # y
  li r12, 0              # c
  li r13, 4
  li r14, 0x7fffff       # best
  li r15, 0              # bestc
cloop:
  slli r16, r12, 2
  add r17, r7, r16
  lw r17, 0(r17)
  add r18, r8, r16
  lw r18, 0(r18)
  sub r17, r10, r17
  sub r18, r11, r18
  mul r17, r17, r17
  mul r18, r18, r18
  add r17, r17, r18      # squared distance
  bge r17, r14, cnext
  mov r14, r17
  mov r15, r12
cnext:
  addi r12, r12, 1
  blt r12, r13, cloop
  slli r16, r1, 2
  add r16, r9, r16
  sw r15, 0(r16)
  add r3, r3, r14        # CIR: single-instruction path
  addiu.xi r5, 4
  addiu.xi r6, 4
  xloop.or r1, r2, body
  la r19, total
  sw r3, 0(r19)
  halt
  .data
ptx:    .space 400
pty:    .space 400
cenx:   .space 16
ceny:   .space 16
member: .space 400
total:  .word 0
)";

Kernel
kmeans()
{
    Kernel k;
    k.name = "kmeans-or";
    k.suite = "C";
    k.patterns = "or,uc";
    k.source = kmeansSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x3ea5);
        for (unsigned i = 0; i < kmObjects; i++) {
            mem.writeWord(prog.symbol("ptx") + 4 * i, rng.nextBelow(256));
            mem.writeWord(prog.symbol("pty") + 4 * i, rng.nextBelow(256));
        }
        for (unsigned c = 0; c < kmClusters; c++) {
            mem.writeWord(prog.symbol("cenx") + 4 * c, 32 + 64 * c);
            mem.writeWord(prog.symbol("ceny") + 4 * c, 224 - 64 * c);
        }
    };
    k.outputs = {{"member", kmObjects}, {"total", 1}};
    return k;
}

// --------------------------------------------------------------------- sha

constexpr unsigned shaBlocks = 4;

const char *shaSrc = R"(
  la r5, wsched
  la r6, digest
  li r9, 0               # block
  li r20, 4
blockloop:
  li r3, 0x67452301      # a..e (CIRs of the round loop)
  li r4, 0xEFCDAB89
  li r7, 0x98BADCFE
  li r8, 0x10325476
  li r21, 0xC3D2E1F0
  li r1, 0
  li r2, 80
body:
  # select f and K by round range
  li r10, 20
  bge r1, r10, f2
  and r11, r4, r7
  not r12, r4
  and r12, r12, r8
  or r11, r11, r12       # f = (b&c) | (~b&d)
  li r13, 0x5A827999
  j fdone
f2:
  li r10, 40
  bge r1, r10, f3
  xor r11, r4, r7
  xor r11, r11, r8       # f = b^c^d
  li r13, 0x6ED9EBA1
  j fdone
f3:
  li r10, 60
  bge r1, r10, f4
  and r11, r4, r7
  and r12, r4, r8
  or r11, r11, r12
  and r12, r7, r8
  or r11, r11, r12       # f = maj(b,c,d)
  li r13, 0x8F1BBCDC
  j fdone
f4:
  xor r11, r4, r7
  xor r11, r11, r8
  li r13, 0xCA62C1D6
fdone:
  slli r14, r3, 5
  srli r15, r3, 27
  or r14, r14, r15       # rotl(a, 5)
  add r14, r14, r11
  add r14, r14, r21
  add r14, r14, r13
  lw r15, 0(r5)          # w[t]
  add r14, r14, r15      # temp
  mov r21, r8            # e = d
  mov r8, r7             # d = c
  slli r15, r4, 30
  srli r16, r4, 2
  or r7, r15, r16        # c = rotl(b, 30)
  mov r4, r3             # b = a
  mov r3, r14            # a = temp
  addiu.xi r5, 4
  xloop.or r1, r2, body
  # fold the block digest
  lw r10, 0(r6)
  add r10, r10, r3
  sw r10, 0(r6)
  lw r10, 4(r6)
  add r10, r10, r4
  sw r10, 4(r6)
  lw r10, 8(r6)
  add r10, r10, r7
  sw r10, 8(r6)
  lw r10, 12(r6)
  add r10, r10, r8
  sw r10, 12(r6)
  lw r10, 16(r6)
  add r10, r10, r21
  sw r10, 16(r6)
  addi r9, r9, 1
  blt r9, r20, blockloop
  halt
  .data
wsched: .space 1280
digest: .space 20
)";

Kernel
sha()
{
    Kernel k;
    k.name = "sha-or";
    k.suite = "M";
    k.patterns = "or,uc";
    k.source = shaSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x5a1);
        // Per block: 16 random message words expanded to 80.
        for (unsigned b = 0; b < shaBlocks; b++) {
            u32 w[80];
            for (unsigned t = 0; t < 16; t++)
                w[t] = static_cast<u32>(rng.next());
            for (unsigned t = 16; t < 80; t++) {
                const u32 x = w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16];
                w[t] = (x << 1) | (x >> 31);
            }
            for (unsigned t = 0; t < 80; t++)
                mem.writeWord(prog.symbol("wsched") + 4 * (80 * b + t),
                              w[t]);
        }
    };
    k.outputs = {{"digest", 5}};
    return k;
}

// ----------------------------------------------------------------- symm-or

const char *symmOrSrc = R"(
  li r9, 0               # i
  li r2, 12
  la r3, syma
  la r4, symb
  la r5, symc
outi:
  li r10, 48
  mul r11, r9, r10
  add r12, r3, r11       # &A[i][0]
  add r13, r5, r11       # &C[i][0]
  li r14, 0              # j
outj:
  li r15, 0              # acc (CIR of the inner loop)
  li r16, 0              # kk
  slli r17, r14, 2
  add r17, r4, r17       # &B[0][j]
  mov r18, r12
bodyk:
  lw r19, 0(r18)
  lw r20, 0(r17)
  mul r21, r19, r20
  add r15, r15, r21      # single-instruction CIR path
  addiu.xi r18, 4
  addiu.xi r17, 48
  xloop.or r16, r2, bodyk
  slli r22, r14, 2
  add r22, r13, r22
  sw r15, 0(r22)
  addi r14, r14, 1
  blt r14, r2, outj
  addi r9, r9, 1
  blt r9, r2, outi
  halt
  .data
syma: .space 576
symb: .space 576
symc: .space 576
)";

Kernel
symmOr()
{
    Kernel k;
    k.name = "symm-or";
    k.suite = "Po";
    k.patterns = "or";
    k.source = symmOrSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x5e33);  // same dataset as symm-uc
        constexpr unsigned n = 12;
        for (unsigned i = 0; i < n; i++) {
            for (unsigned j = 0; j <= i; j++) {
                const u32 v = rng.nextBelow(100);
                mem.writeWord(prog.symbol("syma") + 4 * (i * n + j), v);
                mem.writeWord(prog.symbol("syma") + 4 * (j * n + i), v);
            }
            for (unsigned j = 0; j < n; j++)
                mem.writeWord(prog.symbol("symb") + 4 * (i * n + j),
                              rng.nextBelow(100));
        }
    };
    k.outputs = {{"symc", 144}};
    return k;
}

} // namespace

std::vector<Kernel>
makeOrKernels()
{
    return {adpcm(), covar(), dither(), kmeans(), sha(), symmOr()};
}

} // namespace xloops
