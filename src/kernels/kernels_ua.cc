/**
 * @file
 * Table II kernels with the unordered-atomic (ua) pattern: btree
 * (concurrent BST build with amoswap child claims), hsort (shared
 * binary-heap inserts), huffman (dual histogram update, paper
 * Fig. 1d), and rsort (radix histogram + atomic scatter). The
 * hardware currently executes ua with the om mechanisms (paper
 * Section II-D), so results are serial-equivalent; semantic checkers
 * validate the data-structure invariants as well.
 */

#include <algorithm>
#include <functional>

#include "common/log.h"
#include "common/rng.h"
#include "kernels/kernel.h"

namespace xloops {

namespace {

// ------------------------------------------------------------------- btree

constexpr unsigned btKeys = 256;

const char *btreeSrc = R"(
  li r1, 1               # node 0 is the root
  li r2, 256
  la r6, nodes           # {key, left, right, pad} x N
body:
  slli r10, r1, 4
  add r10, r6, r10
  lw r11, 0(r10)         # key of the node being inserted
  li r12, 0              # cur = root
walk:
  slli r13, r12, 4
  add r13, r6, r13
  lw r14, 0(r13)         # cur key
  addi r15, r13, 4       # assume left child
  blt r11, r14, haveoff
  addi r15, r13, 8       # right child
haveoff:
  lw r16, 0(r15)
  bnez r16, descend
  amoswap r17, r1, (r15) # try to claim the empty slot
  beqz r17, done
  mov r12, r17           # lost the race: descend into winner
  j walk
descend:
  mov r12, r16
  j walk
done:
  xloop.ua r1, r2, body
  halt
  .data
nodes: .space 4096
)";

Kernel
btree()
{
    Kernel k;
    k.name = "btree-ua";
    k.suite = "C";
    k.patterns = "ua,uc";
    k.source = btreeSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0xb7e);
        for (unsigned i = 0; i < btKeys; i++) {
            mem.writeWord(prog.symbol("nodes") + 16 * i,
                          rng.nextBelow(100000));
            mem.writeWord(prog.symbol("nodes") + 16 * i + 4, 0);
            mem.writeWord(prog.symbol("nodes") + 16 * i + 8, 0);
        }
    };
    k.outputs = {{"nodes", 4 * btKeys}};
    k.check = [](MainMemory &mem, const Program &prog, std::string &why) {
        // Every node must be reachable and obey the BST invariant.
        const Addr base = prog.symbol("nodes");
        unsigned visited = 0;
        std::function<bool(u32, i64, i64)> dfs =
            [&](u32 n, i64 lo, i64 hi) {
                const i64 key = mem.readWord(base + 16 * n);
                if (key < lo || key > hi)
                    return false;
                visited++;
                const u32 l = mem.readWord(base + 16 * n + 4);
                const u32 r = mem.readWord(base + 16 * n + 8);
                if (l && !dfs(l, lo, key))
                    return false;
                if (r && !dfs(r, key, hi))
                    return false;
                return true;
            };
        if (!dfs(0, -1, i64{1} << 40)) {
            why = "BST ordering invariant violated";
            return false;
        }
        if (visited != btKeys) {
            why = strf("tree has ", visited, " reachable nodes, want ",
                       btKeys);
            return false;
        }
        return true;
    };
    return k;
}

// ------------------------------------------------------------------- hsort

constexpr unsigned hsElems = 256;

const char *hsortSrc = R"(
  li r1, 0
  li r2, 256
  la r5, hin
  la r6, heap
  la r7, hn
body:
  slli r10, r1, 2
  add r10, r5, r10
  lw r11, 0(r10)         # v
  li r12, 1
  amoadd r13, r12, (r7)  # slot = hn++
  slli r14, r13, 2
  add r14, r6, r14
  sw r11, 0(r14)         # heap[slot] = v
sift:
  beqz r13, sdone
  addi r15, r13, -1
  srli r15, r15, 1       # parent index
  slli r16, r15, 2
  add r16, r6, r16
  lw r17, 0(r16)
  lw r18, 0(r14)
  ble r17, r18, sdone    # heap property holds
  sw r18, 0(r16)         # swap up
  sw r17, 0(r14)
  mov r13, r15
  mov r14, r16
  j sift
sdone:
  xloop.ua r1, r2, body
  halt
  .data
hin:  .space 1024
heap: .space 1024
hn:   .word 0
)";

Kernel
hsort()
{
    Kernel k;
    k.name = "hsort-ua";
    k.suite = "C";
    k.patterns = "ua";
    k.source = hsortSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x4507);
        for (unsigned i = 0; i < hsElems; i++)
            mem.writeWord(prog.symbol("hin") + 4 * i,
                          rng.nextBelow(100000));
    };
    k.outputs = {{"heap", hsElems}, {"hn", 1}};
    k.check = [](MainMemory &mem, const Program &prog, std::string &why) {
        const Addr heap = prog.symbol("heap");
        if (mem.readWord(prog.symbol("hn")) != hsElems) {
            why = "heap count wrong";
            return false;
        }
        for (unsigned i = 1; i < hsElems; i++) {
            if (mem.readWord(heap + 4 * ((i - 1) / 2)) >
                mem.readWord(heap + 4 * i)) {
                why = strf("min-heap property violated at ", i);
                return false;
            }
        }
        return true;
    };
    return k;
}

// ----------------------------------------------------------------- huffman

constexpr unsigned hfSymbols = 2048;

const char *huffmanSrc = R"(
  li r1, 0
  li r2, 2048
  la r5, syms
  la r6, hist
  la r7, histhi
body:
  slli r10, r1, 2
  add r10, r5, r10
  lw r11, 0(r10)         # sym (0..255)
  li r12, 1
  slli r13, r11, 2
  add r13, r6, r13
  amoadd r14, r12, (r13) # hist[sym]++
  srli r15, r11, 4
  slli r15, r15, 2
  add r15, r7, r15
  amoadd r14, r12, (r15) # histhi[sym>>4]++
  xloop.ua r1, r2, body
  halt
  .data
syms:   .space 8192
hist:   .space 1024
histhi: .space 64
)";

Kernel
huffman()
{
    Kernel k;
    k.name = "huffman-ua";
    k.suite = "C";
    k.patterns = "ua";
    k.source = huffmanSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x8f);
        for (unsigned i = 0; i < hfSymbols; i++) {
            // Skewed distribution (entropy-coding flavour).
            const u32 r = rng.nextBelow(256);
            const u32 sym = r < 128 ? r % 16 : r;
            mem.writeWord(prog.symbol("syms") + 4 * i, sym);
        }
    };
    k.outputs = {{"hist", 256}, {"histhi", 16}};
    k.check = [](MainMemory &mem, const Program &prog, std::string &why) {
        u64 total = 0;
        for (unsigned i = 0; i < 256; i++)
            total += mem.readWord(prog.symbol("hist") + 4 * i);
        if (total != hfSymbols) {
            why = strf("histogram total ", total);
            return false;
        }
        return true;
    };
    return k;
}

// ------------------------------------------------------------------- rsort

constexpr unsigned rsElems = 512;
constexpr unsigned rsBuckets = 64;

const char *rsortSrc = R"(
  li r1, 0
  li r2, 512
  la r5, rin
  la r6, rhist
body:
  slli r10, r1, 2
  add r10, r5, r10
  lw r11, 0(r10)
  andi r12, r11, 63      # 6-bit digit
  slli r12, r12, 2
  add r12, r6, r12
  li r13, 1
  amoadd r14, r13, (r12) # digit histogram
  xloop.ua r1, r2, body
  # serial exclusive prefix sum into cursors
  la r7, rcur
  li r15, 0              # running total
  li r16, 0
  li r17, 64
psum:
  slli r18, r16, 2
  add r19, r6, r18
  lw r20, 0(r19)
  add r21, r7, r18
  sw r15, 0(r21)
  add r15, r15, r20
  addi r16, r16, 1
  blt r16, r17, psum
  # scatter pass: stable because ua commits in iteration order
  li r1, 0
  li r2, 512
  la r8, rout
body2:
  slli r10, r1, 2
  add r10, r5, r10
  lw r11, 0(r10)
  andi r12, r11, 63
  slli r12, r12, 2
  add r12, r7, r12
  li r13, 1
  amoadd r14, r13, (r12) # pos = cursor[digit]++
  slli r14, r14, 2
  add r14, r8, r14
  sw r11, 0(r14)
  xloop.ua r1, r2, body2
  halt
  .data
rin:   .space 2048
rhist: .space 256
rcur:  .space 256
rout:  .space 2048
)";

Kernel
rsort()
{
    Kernel k;
    k.name = "rsort-ua";
    k.suite = "C";
    k.patterns = "ua";
    k.source = rsortSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x4504);
        for (unsigned i = 0; i < rsElems; i++)
            mem.writeWord(prog.symbol("rin") + 4 * i,
                          rng.nextBelow(1 << 16));
    };
    k.outputs = {{"rout", rsElems}, {"rhist", rsBuckets}};
    k.check = [](MainMemory &mem, const Program &prog, std::string &why) {
        // Output must be a permutation ordered by the 6-bit digit.
        u32 prevDigit = 0;
        for (unsigned i = 0; i < rsElems; i++) {
            const u32 d = mem.readWord(prog.symbol("rout") + 4 * i) & 63;
            if (d < prevDigit) {
                why = strf("digit order violated at ", i);
                return false;
            }
            prevDigit = d;
        }
        return true;
    };
    return k;
}

} // namespace

std::vector<Kernel>
makeUaKernels()
{
    return {btree(), hsort(), huffman(), rsort()};
}

} // namespace xloops
