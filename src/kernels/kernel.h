/**
 * @file
 * Application-kernel framework for the Table II / Table IV workloads.
 *
 * Each kernel bundles: XLOOPS assembly, a deterministic input
 * generator, the output regions to validate, and (for kernels whose
 * uc/db semantics allow non-serial-equivalent yet correct results) a
 * semantic checker. The serial general-purpose-ISA binary the paper
 * normalizes against is derived mechanically from the same source:
 * xloop becomes addi+blt and xi becomes a plain add — exactly the
 * paper's traditional-execution decode, expressed ahead of time.
 */

#ifndef XLOOPS_KERNELS_KERNEL_H
#define XLOOPS_KERNELS_KERNEL_H

#include <functional>
#include <string>
#include <vector>

#include "asm/program.h"
#include "mem/memory.h"
#include "system/system.h"

namespace xloops {

struct CapsuleContext;

/** One benchmark kernel. */
struct Kernel
{
    std::string name;       ///< e.g. "rgb2cmyk-uc"
    std::string suite;      ///< Po, M, P, C (paper Table II)
    std::string patterns;   ///< "uc", "or,uc", ...
    std::string source;     ///< XLOOPS assembly

    /** Write input data (deterministic) into memory. */
    std::function<void(MainMemory &, const Program &)> setup;

    /** Output regions compared word-for-word against the serial
     *  golden run (used when deterministic). */
    std::vector<std::pair<std::string, unsigned>> outputs;

    /** True when any valid parallel execution must equal the serial
     *  memory image (om/orm and race-free or/uc kernels). */
    bool deterministic = true;

    /** Optional semantic validity check (sortedness, histogram
     *  totals, shortest-path distances, ...). */
    std::function<bool(MainMemory &, const Program &, std::string &)>
        check;
};

/** All Table II kernels plus the Table IV case-study variants. */
const std::vector<Kernel> &kernelRegistry();

/** Lookup by name; throws FatalError when unknown. */
const Kernel &kernelByName(const std::string &name);

/** The 25 Table II kernels (no -opt / transformed variants). */
std::vector<std::string> tableIIKernelNames();

/**
 * Derive the serial GP-ISA source: each xloop becomes
 * "addi rIdx, rIdx, 1; blt rIdx, rBound, L" and each xi becomes a
 * plain add. This is the baseline binary Table II normalizes to.
 */
std::string serializeToGpIsa(const std::string &source);

/** Outcome of one kernel execution. */
struct KernelRun
{
    SysResult result;
    u64 gpDynInsts = 0;      ///< dynamic instructions of the GP binary
    u64 xlDynInsts = 0;      ///< dynamic instructions of the XLOOPS
                             ///< binary under serial semantics
    bool passed = false;
    std::string error;
};

/** Observers threaded into the system a kernel run constructs
 *  internally (all optional; see XloopsSystem::setObserver). */
struct RunHooks
{
    Tracer *tracer = nullptr;         ///< structured event trace
    LoopProfiler *profiler = nullptr; ///< per-loop rollups
    std::ostream *traceText = nullptr; ///< human-readable stream trace

    /** Robustness options (lockstep / checkpoint / restore) forwarded
     *  to the internally built system's run(). */
    const RunOptions *runOptions = nullptr;

    /** Instruction valve forwarded to the system run (sweeps tighten
     *  it per cell; a trip surfaces as SimError(InstLimit)). */
    u64 maxInsts = 500'000'000;

    /** When set, filled with the capsule-relevant run context (program
     *  image, post-setup initial memory, nearest checkpoint) — kept
     *  up to date even when the run throws, so the caller can write a
     *  divergence capsule from its catch site. */
    CapsuleContext *capsule = nullptr;
};

/**
 * Assemble, set up, run, and validate @p kernel.
 *
 * @param useGpIsaBinary run the serialized GP-ISA binary instead
 *                       (mode must be Traditional)
 * @param hooks observers attached to the internally built system
 */
KernelRun runKernel(const Kernel &kernel, const SysConfig &cfg,
                    ExecMode mode, bool useGpIsaBinary = false,
                    const RunHooks &hooks = {});

} // namespace xloops

#endif // XLOOPS_KERNELS_KERNEL_H
