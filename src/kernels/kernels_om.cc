/**
 * @file
 * Table II kernels dominated by memory-ordered patterns: dynprog
 * (distance-1/2 DP recurrence), knn (shared best-list insertion),
 * ksack-sm/ksack-lg (unbounded knapsack whose violation rate is
 * data-dependent: small weights conflict inside the lane window,
 * large weights do not), stencil (in-place Gauss-Seidel sweep, orm),
 * and mm (PBBS greedy maximal matching, orm: a k counter CIR plus
 * irregular vertex updates). om/orm guarantees serial-equivalent
 * memory, so all outputs compare against the golden image.
 */

#include "common/log.h"
#include "common/rng.h"
#include "kernels/kernel.h"

namespace xloops {

namespace {

// ----------------------------------------------------------------- dynprog

constexpr unsigned dynN = 256;

const char *dynprogSrc = R"(
  li r1, 2
  li r2, 256
  la r5, dp
  la r6, ca
  la r7, cb
body:
  slli r10, r1, 2
  add r11, r5, r10       # &dp[i]
  lw r12, -4(r11)        # dp[i-1]
  lw r13, -8(r11)        # dp[i-2]
  add r14, r6, r10
  lw r14, 0(r14)
  add r12, r12, r14      # dp[i-1] + ca[i]
  add r15, r7, r10
  lw r15, 0(r15)
  add r13, r13, r15      # dp[i-2] + cb[i]
  blt r12, r13, dmin
  mov r12, r13
dmin:
  sw r12, 0(r11)
  xloop.om r1, r2, body
  halt
  .data
dp: .space 1024
ca: .space 1024
cb: .space 1024
)";

Kernel
dynprog()
{
    Kernel k;
    k.name = "dynprog-om";
    k.suite = "Po";
    k.patterns = "om";
    k.source = dynprogSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0xd9);
        mem.writeWord(prog.symbol("dp"), 0);
        mem.writeWord(prog.symbol("dp") + 4, 1);
        for (unsigned i = 0; i < dynN; i++) {
            mem.writeWord(prog.symbol("ca") + 4 * i, rng.nextBelow(50));
            mem.writeWord(prog.symbol("cb") + 4 * i, rng.nextBelow(50));
        }
    };
    k.outputs = {{"dp", dynN}};
    return k;
}

// -------------------------------------------------------------------- knn

constexpr unsigned knnPoints = 128;

const char *knnSrc = R"(
  li r1, 0
  li r2, 128
  la r5, knx
  la r6, kny
  la r9, best
  li r20, 77             # query x
  li r21, 140            # query y
body:
  slli r10, r1, 2
  add r11, r5, r10
  lw r12, 0(r11)         # x
  add r11, r6, r10
  lw r13, 0(r11)         # y
  sub r12, r12, r20
  sub r13, r13, r21
  mul r12, r12, r12
  mul r13, r13, r13
  add r12, r12, r13      # d
  lw r14, 12(r9)         # best[3] (largest of the 4 kept)
  bge r12, r14, knext
  # shift-and-insert into the sorted best[0..3]
  lw r15, 8(r9)
  bge r12, r15, ins3
  sw r15, 12(r9)
  lw r16, 4(r9)
  bge r12, r16, ins2
  sw r16, 8(r9)
  lw r17, 0(r9)
  bge r12, r17, ins1
  sw r17, 4(r9)
  sw r12, 0(r9)
  j knext
ins1:
  sw r12, 4(r9)
  j knext
ins2:
  sw r12, 8(r9)
  j knext
ins3:
  sw r12, 12(r9)
knext:
  xloop.om r1, r2, body
  halt
  .data
knx:  .space 512
kny:  .space 512
best: .space 16
)";

Kernel
knn()
{
    Kernel k;
    k.name = "knn-om";
    k.suite = "P";
    k.patterns = "om,uc";
    k.source = knnSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x42e21);
        for (unsigned i = 0; i < knnPoints; i++) {
            mem.writeWord(prog.symbol("knx") + 4 * i, rng.nextBelow(256));
            mem.writeWord(prog.symbol("kny") + 4 * i, rng.nextBelow(256));
        }
        for (unsigned j = 0; j < 4; j++)
            mem.writeWord(prog.symbol("best") + 4 * j, 0x7fffffff);
    };
    k.outputs = {{"best", 4}};
    return k;
}

// ------------------------------------------------------------------- ksack

constexpr unsigned ksackCap = 256;

/** Unbounded knapsack over capacities; weights/values are hoisted
 *  into registers so the LSQ sees only the dp[] traffic. */
const char *ksackSrc = R"(
  li r1, 1
  li r2, 256
  la r5, dp
  la r6, wv
  lw r20, 0(r6)          # w0..w3
  lw r21, 4(r6)
  lw r22, 8(r6)
  lw r23, 12(r6)
  lw r24, 16(r6)         # v0..v3
  lw r25, 20(r6)
  lw r26, 24(r6)
  lw r27, 28(r6)
body:
  slli r10, r1, 2
  add r11, r5, r10       # &dp[c]
  li r12, 0              # best
  blt r1, r20, k1
  sub r13, r1, r20
  slli r13, r13, 2
  add r13, r5, r13
  lw r13, 0(r13)
  add r13, r13, r24
  ble r13, r12, k1
  mov r12, r13
k1:
  blt r1, r21, k2
  sub r13, r1, r21
  slli r13, r13, 2
  add r13, r5, r13
  lw r13, 0(r13)
  add r13, r13, r25
  ble r13, r12, k2
  mov r12, r13
k2:
  blt r1, r22, k3
  sub r13, r1, r22
  slli r13, r13, 2
  add r13, r5, r13
  lw r13, 0(r13)
  add r13, r13, r26
  ble r13, r12, k3
  mov r12, r13
k3:
  blt r1, r23, k4
  sub r13, r1, r23
  slli r13, r13, 2
  add r13, r5, r13
  lw r13, 0(r13)
  add r13, r13, r27
  ble r13, r12, k4
  mov r12, r13
k4:
  sw r12, 0(r11)
  xloop.om r1, r2, body
  halt
  .data
dp: .space 1028
wv: .space 32
)";

Kernel
ksack(bool small_weights)
{
    Kernel k;
    k.name = small_weights ? "ksack-sm-om" : "ksack-lg-om";
    k.suite = "C";
    k.patterns = "om";
    k.source = ksackSrc;
    k.setup = [small_weights](MainMemory &mem, const Program &prog) {
        Rng rng(small_weights ? 0x515 : 0x1a6);
        for (unsigned j = 0; j < 4; j++) {
            const u32 w = small_weights ? 1 + rng.nextBelow(7)
                                        : 16 + rng.nextBelow(48);
            mem.writeWord(prog.symbol("wv") + 4 * j, w);
            mem.writeWord(prog.symbol("wv") + 16 + 4 * j,
                          1 + rng.nextBelow(30));
        }
    };
    k.outputs = {{"dp", ksackCap}};
    return k;
}

// ----------------------------------------------------------------- stencil

constexpr unsigned stRows = 16;
constexpr unsigned stCols = 32;

const char *stencilSrc = R"(
  li r1, 1
  li r2, 15              # rows 1..14
  la r5, grid
  li r3, 0               # checksum (CIR -> orm)
body:
  slli r10, r1, 7        # row * 32 * 4
  add r11, r5, r10       # &grid[i][0]
  li r12, 1              # j
  li r13, 31
cols:
  slli r14, r12, 2
  add r15, r11, r14      # &g[i][j]
  lw r16, 0(r15)
  lw r17, -4(r15)
  add r16, r16, r17
  lw r17, 4(r15)
  add r16, r16, r17
  addi r18, r15, -128
  lw r17, 0(r18)         # g[i-1][j]
  add r16, r16, r17
  addi r18, r15, 128
  lw r17, 0(r18)         # g[i+1][j]
  add r16, r16, r17
  li r17, 5
  div r16, r16, r17
  sw r16, 0(r15)
  add r3, r3, r16        # checksum CIR
  addi r12, r12, 1
  blt r12, r13, cols
  xloop.orm r1, r2, body
  la r19, stsum
  sw r3, 0(r19)
  halt
  .data
grid:  .space 2048
stsum: .word 0
)";

Kernel
stencil()
{
    Kernel k;
    k.name = "stencil-om";
    k.suite = "P";
    k.patterns = "orm,uc";
    k.source = stencilSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x57e);
        for (unsigned i = 0; i < stRows * stCols; i++)
            mem.writeWord(prog.symbol("grid") + 4 * i,
                          rng.nextBelow(1000));
    };
    k.outputs = {{"grid", stRows * stCols}, {"stsum", 1}};
    return k;
}

// --------------------------------------------------------------------- mm

constexpr unsigned mmVertices = 64;
constexpr unsigned mmEdges = 128;

const char *mmSrc = R"(
  li r1, 0
  li r2, 128
  la r5, ev
  la r6, eu
  la r7, vert
  la r8, mout
  li r3, 0               # k (CIR)
body:
  slli r10, r1, 2
  add r11, r5, r10
  lw r12, 0(r11)         # v
  add r11, r6, r10
  lw r13, 0(r11)         # u
  slli r14, r12, 2
  add r14, r7, r14
  lw r15, 0(r14)         # vert[v]
  bge r15, r0, mnext
  slli r16, r13, 2
  add r16, r7, r16
  lw r17, 0(r16)         # vert[u]
  bge r17, r0, mnext
  sw r13, 0(r14)         # match v-u
  sw r12, 0(r16)
  slli r18, r3, 2
  add r18, r8, r18
  sw r1, 0(r18)          # out[k] = edge index
  addi r3, r3, 1
mnext:
  xloop.orm r1, r2, body
  la r19, mk
  sw r3, 0(r19)
  halt
  .data
ev:   .space 512
eu:   .space 512
vert: .space 256
mout: .space 512
mk:   .word 0
)";

Kernel
mm()
{
    Kernel k;
    k.name = "mm-orm";
    k.suite = "P";
    k.patterns = "orm,uc";
    k.source = mmSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x333e);
        for (unsigned e = 0; e < mmEdges; e++) {
            const u32 v = rng.nextBelow(mmVertices);
            u32 u = rng.nextBelow(mmVertices);
            if (u == v)
                u = (u + 1) % mmVertices;
            mem.writeWord(prog.symbol("ev") + 4 * e, v);
            mem.writeWord(prog.symbol("eu") + 4 * e, u);
        }
        for (unsigned v = 0; v < mmVertices; v++)
            mem.writeWord(prog.symbol("vert") + 4 * v,
                          static_cast<u32>(-1));
    };
    k.outputs = {{"vert", mmVertices}, {"mout", mmEdges}, {"mk", 1}};
    // Semantic double-check: the matching must be valid and maximal.
    k.check = [](MainMemory &mem, const Program &prog,
                 std::string &why) {
        std::vector<i32> vert(mmVertices);
        for (unsigned v = 0; v < mmVertices; v++)
            vert[v] = static_cast<i32>(
                mem.readWord(prog.symbol("vert") + 4 * v));
        for (unsigned v = 0; v < mmVertices; v++) {
            if (vert[v] < 0)
                continue;
            if (vert[static_cast<unsigned>(vert[v])] !=
                static_cast<i32>(v)) {
                why = "matching is not symmetric";
                return false;
            }
        }
        for (unsigned e = 0; e < mmEdges; e++) {
            const u32 v = mem.readWord(prog.symbol("ev") + 4 * e);
            const u32 u = mem.readWord(prog.symbol("eu") + 4 * e);
            if (vert[v] < 0 && vert[u] < 0) {
                why = "matching is not maximal";
                return false;
            }
        }
        return true;
    };
    return k;
}

} // namespace

std::vector<Kernel>
makeOmKernels()
{
    return {dynprog(), knn(), ksack(true), ksack(false), stencil(), mm()};
}

} // namespace xloops
