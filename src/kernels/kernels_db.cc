/**
 * @file
 * Table II kernels with the dynamic-bound pattern (xloop.uc.db): bfs
 * (label-correcting worklist traversal with amomin relaxation) and
 * qsort (worklist of partitions). Both grow the loop bound from
 * inside iterations via AMO-reserved worklist slots — the paper's
 * Figure 1(e) idiom.
 *
 * The final dist[] (bfs) and the sorted array (qsort) are
 * order-independent, so they are compared against the serial golden
 * image; worklist layouts are schedule-dependent and excluded.
 */

#include <queue>

#include "common/log.h"
#include "common/rng.h"
#include "kernels/kernel.h"

namespace xloops {

namespace {

// --------------------------------------------------------------------- bfs

constexpr unsigned bfsNodes = 64;
constexpr unsigned bfsDegree = 3;

const char *bfsSrc = R"(
  li r1, 0
  li r2, 1               # bound: worklist holds the source
  la r5, wl
  la r6, adjoff
  la r7, adjlist
  la r8, dist
  la r9, tail
body:
  slli r10, r1, 2
  add r10, r5, r10
  lw r11, 0(r10)         # u = wl[i]
  slli r12, r11, 2
  add r13, r6, r12
  lw r14, 0(r13)         # off
  lw r15, 4(r13)         # end
  add r17, r8, r12
  lw r18, 0(r17)
  addi r18, r18, 1       # candidate distance
nbr:
  bge r14, r15, bdone
  slli r19, r14, 2
  add r19, r7, r19
  lw r20, 0(r19)         # v
  slli r21, r20, 2
  add r21, r8, r21
  amomin r22, r18, (r21) # old = min-relax dist[v]
  ble r22, r18, nonext   # no improvement
  li r23, 1
  amoadd r24, r23, (r9)  # slot = tail++
  slli r25, r24, 2
  add r25, r5, r25
  sw r20, 0(r25)         # append v
  addi r2, r24, 1        # raise the bound (LMU takes the max)
nonext:
  addi r14, r14, 1
  j nbr
bdone:
  xloop.uc.db r1, r2, body
  halt
  .data
wl:      .space 16384
adjoff:  .space 260
adjlist: .space 1024
dist:    .space 256
tail:    .word 1
)";

Kernel
bfs()
{
    Kernel k;
    k.name = "bfs-uc-db";
    k.suite = "C";
    k.patterns = "uc,db";
    k.source = bfsSrc;
    k.deterministic = true;
    k.outputs = {{"dist", bfsNodes}};  // worklist layout excluded
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0xbf5);
        // Random connected-ish digraph in CSR form: a ring plus
        // random extra edges.
        std::vector<std::vector<u32>> adj(bfsNodes);
        for (unsigned v = 0; v < bfsNodes; v++) {
            adj[v].push_back((v + 1) % bfsNodes);
            for (unsigned d = 1; d < bfsDegree; d++)
                adj[v].push_back(rng.nextBelow(bfsNodes));
        }
        u32 off = 0;
        for (unsigned v = 0; v < bfsNodes; v++) {
            mem.writeWord(prog.symbol("adjoff") + 4 * v, off);
            for (const u32 w : adj[v])
                mem.writeWord(prog.symbol("adjlist") + 4 * off++, w);
        }
        mem.writeWord(prog.symbol("adjoff") + 4 * bfsNodes, off);
        for (unsigned v = 0; v < bfsNodes; v++)
            mem.writeWord(prog.symbol("dist") + 4 * v,
                          v == 0 ? 0 : 0x0fffffff);
        mem.writeWord(prog.symbol("wl"), 0);  // source node
    };
    k.check = [](MainMemory &mem, const Program &prog, std::string &why) {
        // Reference BFS distances.
        std::vector<std::vector<u32>> adj(bfsNodes);
        for (unsigned v = 0; v < bfsNodes; v++) {
            const u32 off = mem.readWord(prog.symbol("adjoff") + 4 * v);
            const u32 end =
                mem.readWord(prog.symbol("adjoff") + 4 * (v + 1));
            for (u32 e = off; e < end; e++)
                adj[v].push_back(
                    mem.readWord(prog.symbol("adjlist") + 4 * e));
        }
        std::vector<i32> ref(bfsNodes, -1);
        std::queue<u32> q;
        ref[0] = 0;
        q.push(0);
        while (!q.empty()) {
            const u32 u = q.front();
            q.pop();
            for (const u32 v : adj[u]) {
                if (ref[v] < 0) {
                    ref[v] = ref[u] + 1;
                    q.push(v);
                }
            }
        }
        for (unsigned v = 0; v < bfsNodes; v++) {
            const u32 d = mem.readWord(prog.symbol("dist") + 4 * v);
            if (ref[v] >= 0 && d != static_cast<u32>(ref[v])) {
                why = strf("dist[", v, "] = ", d, ", BFS says ", ref[v]);
                return false;
            }
        }
        return true;
    };
    return k;
}

// ------------------------------------------------------------------- qsort

constexpr unsigned qsElems = 256;

const char *qsortSrc = R"(
  li r1, 0
  li r2, 1
  la r5, wlo
  la r6, whi
  la r7, qdata
  la r9, qtail
body:
  slli r10, r1, 2
  add r11, r5, r10
  lw r12, 0(r11)         # lo
  add r11, r6, r10
  lw r13, 0(r11)         # hi (inclusive)
  bge r12, r13, qdone
  # Lomuto partition with pivot = data[hi]
  slli r14, r13, 2
  add r14, r7, r14
  lw r15, 0(r14)         # pivot
  mov r16, r12           # store index
  mov r17, r12           # scan index
ploop:
  bge r17, r13, pdone
  slli r18, r17, 2
  add r18, r7, r18
  lw r19, 0(r18)
  bge r19, r15, pnext
  slli r20, r16, 2
  add r20, r7, r20
  lw r21, 0(r20)
  sw r19, 0(r20)
  sw r21, 0(r18)
  addi r16, r16, 1
pnext:
  addi r17, r17, 1
  j ploop
pdone:
  slli r20, r16, 2
  add r20, r7, r20
  lw r21, 0(r20)
  sw r15, 0(r20)
  sw r21, 0(r14)
  # push [lo, store-1] when it has >= 2 elements
  addi r22, r16, -1
  bge r12, r22, nol
  li r23, 1
  amoadd r24, r23, (r9)
  slli r25, r24, 2
  add r26, r5, r25
  sw r12, 0(r26)
  add r26, r6, r25
  sw r22, 0(r26)
  addi r2, r24, 1
nol:
  # push [store+1, hi] when it has >= 2 elements
  addi r22, r16, 1
  bge r22, r13, qdone
  li r23, 1
  amoadd r24, r23, (r9)
  slli r25, r24, 2
  add r26, r5, r25
  sw r22, 0(r26)
  add r26, r6, r25
  sw r13, 0(r26)
  addi r2, r24, 1
qdone:
  xloop.uc.db r1, r2, body
  halt
  .data
wlo:   .space 2048
whi:   .space 2048
qdata: .space 1024
qtail: .word 1
)";

Kernel
qsort()
{
    Kernel k;
    k.name = "qsort-uc-db";
    k.suite = "C";
    k.patterns = "uc,db";
    k.source = qsortSrc;
    k.deterministic = true;
    k.outputs = {{"qdata", qsElems}};  // sorted array is unique
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x4507a);
        for (unsigned i = 0; i < qsElems; i++)
            mem.writeWord(prog.symbol("qdata") + 4 * i,
                          rng.nextBelow(100000));
        mem.writeWord(prog.symbol("wlo"), 0);
        mem.writeWord(prog.symbol("whi"), qsElems - 1);
    };
    k.check = [](MainMemory &mem, const Program &prog, std::string &why) {
        for (unsigned i = 1; i < qsElems; i++) {
            if (mem.readWord(prog.symbol("qdata") + 4 * i) <
                mem.readWord(prog.symbol("qdata") + 4 * (i - 1))) {
                why = strf("not sorted at ", i);
                return false;
            }
        }
        return true;
    };
    return k;
}

} // namespace

std::vector<Kernel>
makeDbKernels()
{
    return {bfs(), qsort()};
}

} // namespace xloops
