#include "system/sampling.h"

#include <cmath>

#include "common/json.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/sim_error.h"

namespace xloops {

SampledSimulation::SampledSimulation(const SysConfig &config,
                                     const SampleOptions &options)
    : cfg(config), opts(options), exec(mem), gpp(makeGppModel(config.gpp))
{
    if (opts.window == 0)
        fatal("sample window must be at least one instruction");
    if (opts.warmup == ~u64{0})
        opts.warmup = opts.window;
    if (opts.period < opts.warmup + opts.window) {
        fatal(strf("sample period ", opts.period,
                   " is smaller than warmup ", opts.warmup, " + window ",
                   opts.window));
    }
}

void
SampledSimulation::loadProgram(const Program &prog)
{
    prog.loadInto(mem);
}

void
SampledSimulation::restore(const std::string &checkpointText,
                           const Program &prog)
{
    const JsonValue v = jsonParse(checkpointText);
    if (v.at("schema").asString() != "xloops-ckpt-1")
        fatal("not an xloops-ckpt-1 checkpoint");
    if (parseU64(v.at("program_hash").asString()) != prog.hash())
        fatal("checkpoint was taken against a different program image");

    const std::vector<u64> regs = readU64Array(v.at("regs"));
    if (regs.size() != numArchRegs)
        fatal("checkpoint register file size mismatch");
    for (unsigned r = 0; r < numArchRegs; r++)
        exec.regFile().regs[r] = static_cast<u32>(regs[r]);
    mem.loadState(v.at("mem"));
    cur.pc = static_cast<Addr>(v.at("pc").asU64());
    cur.dynInsts = v.at("inst_count").asU64();
    cur.halted = false;

    // The restored memory image may carry text bytes that disagree
    // with anything this executor decoded earlier (self-referential
    // programs, a different run of the same binary): every cached
    // superblock is stale by definition.
    exec.invalidate();
}

u64
SampledSimulation::stepDetailed(const DecodedProgram &dec, u64 budget)
{
    RegFile &regs = exec.regFile();
    u64 done = 0;
    while (done < budget && !cur.halted) {
        const Instruction &inst = dec.fetch(cur.pc);
        const StepResult step =
            ExecCore::step(inst, cur.pc, regs, mem, cur.dynInsts);
        gpp->retire(inst, cur.pc, step);
        cur.dynInsts++;
        done++;
        if (inst.isXloop())
            exec.stats().add("xloop_insts");
        if (inst.isXi())
            exec.stats().add("xi_insts");
        if (step.halted) {
            cur.halted = true;
            break;
        }
        cur.pc = step.nextPc;
    }
    return done;
}

SampleResult
SampledSimulation::run(const Program &prog)
{
    SampleResult r;
    if (!cur.halted && cur.pc == 0)
        cur.pc = prog.entry;
    const DecodedProgram &dec = prog.decoded();
    const u64 startInsts = cur.dynInsts;

    // One random draw fixes the detailed region's offset within every
    // period — systematic sampling with a random phase. The stream is
    // named so other consumers of the seed can never perturb it.
    RngPool pool(opts.seed);
    const u64 slack = opts.period - opts.warmup - opts.window;
    r.phase = slack == 0 ? 0 : pool.stream("sample.select").next() % (slack + 1);

    while (!cur.halted) {
        if (cur.dynInsts - startInsts >= opts.maxInsts) {
            MachineSnapshot snap;
            snap.context = "sampled-run instruction-limit valve";
            snap.gppPc = cur.pc;
            snap.gppInsts = cur.dynInsts;
            throw SimError(SimErrorKind::InstLimit,
                           strf("sampled execution exceeded ", opts.maxInsts,
                                " instructions without halting"),
                           snap);
        }
        const u64 pos = cur.dynInsts % opts.period;
        if (pos < r.phase) {
            // Functional fast-forward to the detailed region.
            r.ffInsts += exec.execute(prog, cur, r.phase - pos);
        } else if (pos == r.phase) {
            // Detailed warming: timed through the model (to re-warm
            // caches and pipeline state) but excluded from the CPI
            // observations.
            r.warmupInsts += stepDetailed(dec, opts.warmup);
            if (cur.halted)
                break;
            const Cycle before = gpp->now();
            const u64 done = stepDetailed(dec, opts.window);
            if (done == opts.window) {
                const Cycle cycles = gpp->now() - before;
                r.measuredInsts += done;
                r.measuredCycles += cycles;
                r.windowCpi.push_back(static_cast<double>(cycles) /
                                      static_cast<double>(done));
                r.windows++;
            }
            // A partial window (program halted inside it) is
            // discarded: it would bias the estimate toward the exit
            // path's CPI.
        } else {
            // Past the detailed region (possible after a checkpoint
            // restore landing mid-period): fast-forward to the next
            // period boundary.
            r.ffInsts += exec.execute(prog, cur, opts.period - pos);
        }
    }

    r.halted = cur.halted;
    r.totalInsts = cur.dynInsts;
    exec.stats().set("dyn_insts", cur.dynInsts);

    if (r.windows > 0) {
        double sum = 0.0;
        for (const double c : r.windowCpi)
            sum += c;
        r.cpiEst = sum / static_cast<double>(r.windows);
        if (r.windows > 1) {
            double sq = 0.0;
            for (const double c : r.windowCpi)
                sq += (c - r.cpiEst) * (c - r.cpiEst);
            r.cpiStddev =
                std::sqrt(sq / static_cast<double>(r.windows - 1));
            r.cpiHalfWidth = opts.z * r.cpiStddev /
                             std::sqrt(static_cast<double>(r.windows));
        } else {
            // A single observation carries no spread information: the
            // honest interval is the whole estimate.
            r.cpiHalfWidth = r.cpiEst;
        }
        // Resolution floor: detailed warming bounds how much bias a
        // window can carry; claiming a tighter interval than this
        // would be false precision (see EXPERIMENTS.md).
        const double floor = opts.minRelHalfWidth * r.cpiEst;
        if (r.cpiHalfWidth < floor)
            r.cpiHalfWidth = floor;
        r.estCycles = static_cast<Cycle>(
            std::llround(r.cpiEst * static_cast<double>(r.totalInsts)));
    }
    return r;
}

void
SampledSimulation::writeJson(JsonWriter &w, const SampleResult &r) const
{
    w.beginObject();
    w.field("schema", "xloops-sample-1");
    w.field("config", cfg.name);
    w.field("seed", opts.seed);
    w.field("sample_period", opts.period);
    w.field("sample_window", opts.window);
    w.field("sample_warmup", opts.warmup);
    w.field("phase", r.phase);
    w.field("total_insts", r.totalInsts);
    w.field("ff_insts", r.ffInsts);
    w.field("warmup_insts", r.warmupInsts);
    w.field("measured_insts", r.measuredInsts);
    w.field("measured_cycles", static_cast<u64>(r.measuredCycles));
    w.field("windows", r.windows);
    w.field("cpi_est", r.cpiEst);
    w.field("cpi_ci_half", r.cpiHalfWidth);
    w.field("cpi_stddev", r.cpiStddev);
    w.field("ci_z", opts.z);
    w.field("min_rel_ci_half", opts.minRelHalfWidth);
    w.field("est_cycles", static_cast<u64>(r.estCycles));
    w.field("halted", r.halted);
    w.key("window_cpi").beginArray();
    for (const double c : r.windowCpi)
        w.value(c);
    w.endArray();
    w.endObject();
}

} // namespace xloops
