#include "system/adaptive.h"

namespace xloops {

AdaptiveController::AdaptiveController(unsigned entries, u64 iter_threshold,
                                       Cycle cycle_threshold)
    : iterThreshold(iter_threshold), cycleThreshold(cycle_threshold),
      entries(entries)
{
}

AptEntry &
AdaptiveController::lookup(Addr pc)
{
    for (auto &entry : entries)
        if (entry.valid && entry.pc == pc)
            return entry;
    AptEntry &victim = entries[fifoNext];
    fifoNext = (fifoNext + 1) % entries.size();
    victim = AptEntry{};
    victim.pc = pc;
    victim.valid = true;
    return victim;
}

void
AdaptiveController::reset()
{
    for (auto &entry : entries)
        entry = AptEntry{};
    fifoNext = 0;
}

} // namespace xloops
