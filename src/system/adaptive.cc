#include "system/adaptive.h"

#include "common/json.h"
#include "common/log.h"

namespace xloops {

AdaptiveController::AdaptiveController(unsigned entries, u64 iter_threshold,
                                       Cycle cycle_threshold)
    : iterThreshold(iter_threshold), cycleThreshold(cycle_threshold),
      entries(entries)
{
}

AptEntry &
AdaptiveController::lookup(Addr pc)
{
    for (auto &entry : entries)
        if (entry.valid && entry.pc == pc)
            return entry;
    AptEntry &victim = entries[fifoNext];
    fifoNext = (fifoNext + 1) % entries.size();
    victim = AptEntry{};
    victim.pc = pc;
    victim.valid = true;
    return victim;
}

void
AdaptiveController::reset()
{
    for (auto &entry : entries)
        entry = AptEntry{};
    fifoNext = 0;
}

void
AdaptiveController::saveState(JsonWriter &w) const
{
    w.field("fifo_next", static_cast<u64>(fifoNext));
    w.key("entries").beginArray();
    for (const AptEntry &e : entries) {
        w.beginObject();
        w.field("pc", static_cast<u64>(e.pc));
        w.field("valid", e.valid);
        w.field("state", static_cast<u64>(e.state));
        w.field("gpp_iters", e.gppIters);
        w.field("gpp_cycles", e.gppCycles);
        w.field("last_visit", e.lastVisit);
        w.field("last_visit_valid", e.lastVisitValid);
        w.endObject();
    }
    w.endArray();
}

void
AdaptiveController::loadState(const JsonValue &v)
{
    fifoNext = v.at("fifo_next").asU64();
    const auto &arr = v.at("entries").array();
    if (arr.size() != entries.size())
        fatal("checkpoint APT size does not match configuration");
    for (size_t i = 0; i < arr.size(); i++) {
        const JsonValue &ev = arr[i];
        AptEntry &e = entries[i];
        e.pc = static_cast<Addr>(ev.at("pc").asU64());
        e.valid = ev.at("valid").asBool();
        const u64 st = ev.at("state").asU64();
        if (st > static_cast<u64>(AptEntry::State::DecidedLpsu))
            fatal("checkpoint APT entry state out of range");
        e.state = static_cast<AptEntry::State>(st);
        e.gppIters = ev.at("gpp_iters").asU64();
        e.gppCycles = ev.at("gpp_cycles").asU64();
        e.lastVisit = ev.at("last_visit").asU64();
        e.lastVisitValid = ev.at("last_visit_valid").asBool();
    }
}

} // namespace xloops
