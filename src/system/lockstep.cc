#include "system/lockstep.h"

#include <array>

#include "common/json.h"
#include "common/log.h"
#include "common/sim_error.h"
#include "lpsu/lpsu.h"

namespace xloops {

namespace {

/** Valve on shadow catch-up re-execution: a diverged index register
 *  must not spin the shadow forever. Generous: the largest registered
 *  kernel re-executes well under a million shadow instructions per
 *  specialized slice. */
constexpr u64 catchUpInstLimit = 200'000'000;

} // namespace

LockstepChecker::LockstepChecker(const Program &program) : prog(program)
{
}

void
LockstepChecker::start(const MainMemory &mainMem, Addr entry)
{
    regs = RegFile{};
    mem.copyFrom(mainMem);
    pc = entry;
    halted = false;
    numComparisons = 0;
    numShadowInsts = 0;
}

void
LockstepChecker::raise(const char *site, Addr atPc, u64 instIndex,
                       i64 iteration, const RegFile &mainRegs,
                       const MainMemory &mainMem, const bool *skip)
{
    DivergenceInfo info;
    info.site = site;
    info.pc = atPc;
    info.instIndex = instIndex;
    info.iteration = iteration;
    for (unsigned r = 1; r < numArchRegs; r++) {
        if (skip && skip[r])
            continue;
        const RegId reg = static_cast<RegId>(r);
        if (mainRegs.get(reg) != regs.get(reg)) {
            info.regMismatch = true;
            info.reg = reg;
            info.mainValue = mainRegs.get(reg);
            info.shadowValue = regs.get(reg);
            break;
        }
    }
    if (mainMem.digest() != mem.digest()) {
        const Addr addr = MainMemory::firstDifference(mainMem, mem);
        if (addr != ~Addr{0}) {
            info.memMismatch = true;
            info.memAddr = addr;
            // firstDifference names the byte; re-read both sides.
            MainMemory &mm = const_cast<MainMemory &>(mainMem);
            info.mainByte = static_cast<u8>(mm.read(addr, 1));
            info.shadowByte = static_cast<u8>(mem.read(addr, 1));
        }
    }

    MachineSnapshot snap;
    snap.context = strf("lockstep ", site, " comparison");
    snap.gppPc = atPc;
    snap.gppInsts = instIndex;
    snap.occupancy.emplace_back("lockstep_comparisons", numComparisons);
    snap.occupancy.emplace_back("shadow_insts", numShadowInsts);

    throw DivergenceError(
        strf("timing model diverged from the golden model at pc 0x",
             std::hex, atPc, std::dec, " (", site, " site)"),
        std::move(info), std::move(snap));
}

void
LockstepChecker::compare(const char *site, Addr atPc,
                         const RegFile &mainRegs,
                         const MainMemory &mainMem, u64 instIndex,
                         i64 iteration, const bool *skip)
{
    numComparisons++;
    bool regsEqual = true;
    for (unsigned r = 1; r < numArchRegs; r++) {
        if (skip && skip[r])
            continue;
        if (mainRegs.regs[r] != regs.regs[r]) {
            regsEqual = false;
            break;
        }
    }
    if (regsEqual && mainMem.digest() == mem.digest())
        return;
    raise(site, atPc, instIndex, iteration, mainRegs, mainMem, skip);
}

void
LockstepChecker::mirrorStep(Addr pc_, const StepResult &mainStep,
                            const RegFile &mainRegs,
                            const MainMemory &mainMem, Cycle cycle,
                            u64 instIndex)
{
    if (halted || pc != pc_) {
        // The shadow should always sit at the pc the timing model is
        // committing; a prior control divergence slipped through.
        raise("control", pc_, instIndex, -1, mainRegs, mainMem);
    }
    const Instruction &inst = prog.decoded().fetch(pc);
    const StepResult s = ExecCore::step(inst, pc, regs, mem, cycle);
    numShadowInsts++;
    if (s.nextPc != mainStep.nextPc || s.halted != mainStep.halted)
        raise("control", pc, instIndex, -1, mainRegs, mainMem);
    pc = s.nextPc;
    halted = s.halted;
    compare(halted ? "halt" : "post-inst", pc_, mainRegs, mainMem,
            instIndex, -1);
}

void
LockstepChecker::checkEntry(Addr xloopPc, const RegFile &mainRegs,
                            const MainMemory &mainMem, u64 instIndex)
{
    if (halted || pc != xloopPc)
        raise("xloop-entry", xloopPc, instIndex, -1, mainRegs, mainMem);
    compare("xloop-entry", xloopPc, mainRegs, mainMem, instIndex,
            static_cast<i64>(static_cast<i32>(
                mainRegs.get(prog.fetch(xloopPc).rd))));
}

void
LockstepChecker::catchUp(Addr xloopPc, RegId idxReg,
                         const RegFile &mainRegs,
                         const MainMemory &mainMem, Cycle cycle,
                         u64 instIndex)
{
    const u32 targetIdx = mainRegs.get(idxReg);
    u64 steps = 0;
    while (pc != xloopPc || regs.get(idxReg) != targetIdx) {
        if (halted || steps++ > catchUpInstLimit) {
            raise("xloop-exit", xloopPc, instIndex,
                  static_cast<i64>(static_cast<i32>(regs.get(idxReg))),
                  mainRegs, mainMem);
        }
        const Instruction &inst = prog.decoded().fetch(pc);
        const StepResult s = ExecCore::step(inst, pc, regs, mem, cycle);
        numShadowInsts++;
        pc = s.nextPc;
        halted = s.halted;
    }

    // The hand-back contract (see Lpsu): index, bound, CIRs, and MIVs
    // come back serial-exact and are compared, as is everything the
    // body never writes (untouched by either side) and all of memory.
    // Lane-private body temporaries are architecturally dead after a
    // specialized loop and are not handed back, so they are exempt
    // and the shadow adopts the timing model's (stale live-in) values
    // to keep every later per-instruction compare exact.
    const ScanInfo si = scanXloop(prog, xloopPc, regs);
    std::array<bool, numArchRegs> skip{};
    for (const Instruction &inst : si.body) {
        const RegId dst = inst.destReg();
        if (dst < numArchRegs)
            skip[dst] = true;
    }
    skip[si.idxReg] = false;
    skip[si.boundReg] = false;
    for (unsigned r = 1; r < numArchRegs; r++)
        if (si.isCir[r] || si.isMiv[r])
            skip[r] = false;

    compare("xloop-exit", xloopPc, mainRegs, mainMem, instIndex,
            static_cast<i64>(static_cast<i32>(targetIdx)), skip.data());
    for (unsigned r = 1; r < numArchRegs; r++)
        if (skip[r])
            regs.set(static_cast<RegId>(r),
                     mainRegs.get(static_cast<RegId>(r)));
}

void
LockstepChecker::saveState(JsonWriter &w) const
{
    // State identity with the main machine is an invariant at every
    // checkpoint boundary (the preceding compare passed), so only the
    // checker's own counters are stored; restore re-clones the shadow
    // from the restored main state.
    w.field("comparisons", numComparisons);
    w.field("shadow_insts", numShadowInsts);
}

void
LockstepChecker::loadState(const JsonValue &v, const RegFile &mainRegs,
                           const MainMemory &mainMem, Addr mainPc)
{
    resume(mainRegs, mainMem, mainPc);
    numComparisons = v.at("comparisons").asU64();
    numShadowInsts = v.at("shadow_insts").asU64();
}

void
LockstepChecker::resume(const RegFile &mainRegs,
                        const MainMemory &mainMem, Addr mainPc)
{
    regs = mainRegs;
    mem.copyFrom(mainMem);
    pc = mainPc;
    halted = false;
    numComparisons = 0;
    numShadowInsts = 0;
}

} // namespace xloops
