/**
 * @file
 * Differential lockstep verification (the robustness counterpart of
 * the kernels' end-of-run golden checkers).
 *
 * The checker runs a shadow copy of the functional golden semantics —
 * the same ExecCore::step every engine funnels through, but over its
 * own register file and memory image — alongside whichever timing
 * model is driving the run (in-order, out-of-order, LPSU-specialized,
 * adaptive). After every committed GPP instruction the shadow executes
 * the same pc traditionally and the two architectural states are
 * compared: registers directly, memory in O(1) through the incremental
 * content digest. When the LPSU takes a loop, the shadow instead
 * re-executes the specialized iterations traditionally (body + xloop
 * back-branch) until its loop index meets the LPSU's hand-back index,
 * and the states are compared at the xloop-entry and xloop-exit sync
 * points. The first disagreement raises DivergenceError (exit code 5)
 * naming the first mismatching register or byte address — so a wrong
 * answer is caught at the instruction (or loop iteration) that
 * produced it, not at the end-of-run checker.
 *
 * The xloop-exit compare honours the LPSU hand-back contract: the
 * loop index, bound, cross-iteration registers (last iteration's
 * value), and mutual induction variables are serial-exact and are
 * compared, along with memory and every register the body never
 * writes. Lane-private body temporaries are architecturally dead
 * after a specialized loop (the ISA contract; they are not handed
 * back), so they are excluded and the shadow adopts the timing
 * model's values for them.
 *
 * Known limitation: a csrr cycle-counter read inside a specialized
 * loop legitimately differs between the timing model and the shadow;
 * lockstep is meant for kernels whose results are cycle-independent
 * (all registered kernels are).
 */

#ifndef XLOOPS_SYSTEM_LOCKSTEP_H
#define XLOOPS_SYSTEM_LOCKSTEP_H

#include "asm/program.h"
#include "cpu/exec_core.h"
#include "mem/memory.h"

namespace xloops {

class JsonWriter;
class JsonValue;
struct StepResult;

class LockstepChecker
{
  public:
    explicit LockstepChecker(const Program &program);

    /** Clone @p mainMem (program + inputs already loaded) and point
     *  the shadow at the entry pc. */
    void start(const MainMemory &mainMem, Addr entry);

    /**
     * Mirror one committed instruction: the shadow executes @p pc with
     * the cycle value the timing model saw, then control flow and full
     * architectural state are compared. @p mainStep / @p mainRegs /
     * @p mainMem are the timing model's state *after* the step.
     * Throws DivergenceError on the first mismatch.
     */
    void mirrorStep(Addr pc, const StepResult &mainStep,
                    const RegFile &mainRegs, const MainMemory &mainMem,
                    Cycle cycle, u64 instIndex);

    /** Compare states at an xloop-entry sync point (the shadow is at
     *  @p xloopPc; the LPSU is about to take the loop). */
    void checkEntry(Addr xloopPc, const RegFile &mainRegs,
                    const MainMemory &mainMem, u64 instIndex);

    /**
     * xloop-exit sync point: the LPSU handed the loop back with the
     * index register at mainRegs[idxReg]. Re-execute the specialized
     * iterations traditionally on the shadow until it reaches
     * @p xloopPc with the same index, then compare full state.
     */
    void catchUp(Addr xloopPc, RegId idxReg, const RegFile &mainRegs,
                 const MainMemory &mainMem, Cycle cycle, u64 instIndex);

    /** Sync-point comparisons performed so far (tests/stats). */
    u64 comparisons() const { return numComparisons; }

    /** Shadow instructions executed (catch-up re-execution included). */
    u64 shadowInsts() const { return numShadowInsts; }

    /**
     * Checkpoint support. At every checkpoint boundary the preceding
     * comparison passed, so the shadow state equals the main state and
     * is not stored; restore re-clones it from the restored main state.
     */
    void saveState(JsonWriter &w) const;
    void loadState(const JsonValue &v, const RegFile &mainRegs,
                   const MainMemory &mainMem, Addr mainPc);

    /** Re-clone the shadow from a restored main state (used when the
     *  checkpoint was taken without lockstep enabled). */
    void resume(const RegFile &mainRegs, const MainMemory &mainMem,
                Addr mainPc);

  private:
    /** Architectural compare (registers with skip[r] set are exempt);
     *  throws DivergenceError on mismatch. */
    void compare(const char *site, Addr atPc, const RegFile &mainRegs,
                 const MainMemory &mainMem, u64 instIndex, i64 iteration,
                 const bool *skip = nullptr);

    [[noreturn]] void raise(const char *site, Addr atPc, u64 instIndex,
                            i64 iteration, const RegFile &mainRegs,
                            const MainMemory &mainMem,
                            const bool *skip = nullptr);

    const Program &prog;
    RegFile regs;
    MainMemory mem;
    Addr pc = 0;
    bool halted = false;
    u64 numComparisons = 0;
    u64 numShadowInsts = 0;
};

} // namespace xloops

#endif // XLOOPS_SYSTEM_LOCKSTEP_H
