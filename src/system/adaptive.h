/**
 * @file
 * Adaptive execution support (paper Section II-E): the adaptive
 * profiling table (APT) records, per xloop PC, profiling progress and
 * the eventual traditional-vs-specialized decision. Profiling may
 * stretch across multiple dynamic instances of an xloop; the decision
 * is sticky (the paper's current implementation never reconsiders).
 */

#ifndef XLOOPS_SYSTEM_ADAPTIVE_H
#define XLOOPS_SYSTEM_ADAPTIVE_H

#include <vector>

#include "common/types.h"

namespace xloops {

class JsonWriter;
class JsonValue;

/** One APT entry. */
struct AptEntry
{
    enum class State : u8
    {
        ProfileGpp,   ///< measuring traditional execution
        DecidedGpp,   ///< traditional execution wins
        DecidedLpsu,  ///< specialized execution wins
    };

    Addr pc = 0;
    bool valid = false;
    State state = State::ProfileGpp;
    u64 gppIters = 0;
    Cycle gppCycles = 0;
    Cycle lastVisit = 0;
    bool lastVisitValid = false;
};

/** PC-indexed adaptive profiling table with FIFO replacement. */
class AdaptiveController
{
  public:
    explicit AdaptiveController(unsigned entries = 16,
                                u64 iter_threshold = 256,
                                Cycle cycle_threshold = 2000);

    /** Find or allocate the entry for @p pc. */
    AptEntry &lookup(Addr pc);

    /** True once GPP profiling for @p entry has hit a threshold. */
    bool
    profilingDone(const AptEntry &entry) const
    {
        return entry.gppIters >= iterThreshold ||
               entry.gppCycles >= cycleThreshold;
    }

    void reset();

    u64 iterThresholdValue() const { return iterThreshold; }

    /** Checkpoint capture/restore of the table and FIFO cursor. */
    void saveState(JsonWriter &w) const;
    void loadState(const JsonValue &v);

  private:
    u64 iterThreshold;
    Cycle cycleThreshold;
    std::vector<AptEntry> entries;
    size_t fifoNext = 0;
};

} // namespace xloops

#endif // XLOOPS_SYSTEM_ADAPTIVE_H
