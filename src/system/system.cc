#include "system/system.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/json.h"
#include "common/log.h"
#include "common/sim_error.h"
#include "isa/disasm.h"
#include "system/lockstep.h"

namespace xloops {

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Traditional: return "T";
      case ExecMode::Specialized: return "S";
      case ExecMode::Adaptive: return "A";
    }
    return "?";
}

XloopsSystem::XloopsSystem(const SysConfig &config)
    : cfg(config), gpp(makeGppModel(config.gpp))
{
    if (cfg.hasLpsu)
        lpsu = std::make_unique<Lpsu>(cfg.lpsu, mem, gpp->dcacheModel());
}

void
XloopsSystem::loadProgram(const Program &prog)
{
    prog.loadInto(mem);
}

void
XloopsSystem::setTrace(std::ostream *out)
{
    traceOut = out;
    if (lpsu)
        lpsu->setTrace(out);
}

void
XloopsSystem::setObserver(Tracer *t, LoopProfiler *p)
{
    tracer = t;
    profiler = p;
    gpp->setTracer(t);
    if (lpsu) {
        lpsu->setTracer(t);
        lpsu->setProfiler(p);
    }
}

bool
XloopsSystem::specialize(const Program &prog, Addr pc, RegFile &regs,
                         u64 maxIters, SysResult &result)
{
    if (fallbackPcs.count(pc))
        return false;  // known oversized body: stay traditional
    const auto cooldown = stormCooldowns.find(pc);
    if (cooldown != stormCooldowns.end() &&
        cooldown->second.remaining > 0) {
        // Degraded: a recent squash storm demoted this loop to
        // traditional execution for a backed-off number of
        // encounters (one encounter per traditional iteration).
        cooldown->second.remaining--;
        return false;
    }
    const Cycle before = gpp->now();
    const LpsuResult lr = lpsu->execute(prog, pc, regs, maxIters, before);
    if (lr.fellBack && lr.reason == FallbackReason::BodyTooLarge) {
        fallbackPcs.insert(pc);
        return false;
    }
    // The GPP stalls while the LPSU owns the loop (scan + execution).
    gpp->advanceTo(before + lr.scanCycles + lr.execCycles);
    XTRACE(tracer, before + lr.scanCycles + lr.execCycles, TraceComp::Gpp,
           0, TraceKind::XloopSlice, static_cast<i64>(pc),
           static_cast<i64>(lr.scanCycles + lr.execCycles));
    result.laneInsts += lr.laneInsts;
    if (lr.iterations > 0)
        result.xloopsSpecialized++;
    if (lr.fellBack && lr.reason == FallbackReason::SquashStorm) {
        // Partial progress was handed back exactly; back off before
        // trying specialization on this loop again (exponentially,
        // so a pathologically conflicting loop converges on
        // traditional execution).
        StormCooldown &sc = stormCooldowns[pc];
        sc.level = std::min(sc.level + 1, 12u);
        sc.remaining = u64{1} << sc.level;
    }
    return true;
}

void
XloopsSystem::adaptivePre(const Program &prog, Addr pc, RegFile &regs,
                          SysResult &result)
{
    AptEntry &entry = apt.lookup(pc);
    switch (entry.state) {
      case AptEntry::State::DecidedGpp:
        return;  // traditional execution won; stay on the GPP

      case AptEntry::State::DecidedLpsu:
        specialize(prog, pc, regs, ~u64{0}, result);
        return;

      case AptEntry::State::ProfileGpp: {
        if (!apt.profilingDone(entry))
            return;  // keep measuring traditional iterations
        // GPP profiling phase complete: scan, then run the LPSU
        // profiling phase for the same number of iterations.
        const u64 profIters = entry.gppIters;
        const Cycle before = gpp->now();
        const LpsuResult lr =
            lpsu->execute(prog, pc, regs, profIters, before);
        if (lr.fellBack) {
            entry.state = AptEntry::State::DecidedGpp;
            return;
        }
        gpp->advanceTo(before + lr.scanCycles + lr.execCycles);
        XTRACE(tracer, before + lr.scanCycles + lr.execCycles,
               TraceComp::Gpp, 0, TraceKind::XloopSlice,
               static_cast<i64>(pc),
               static_cast<i64>(lr.scanCycles + lr.execCycles));
        result.laneInsts += lr.laneInsts;

        // Compare cycles-per-iteration of the two phases.
        const double gppRate = static_cast<double>(entry.gppCycles) /
                               static_cast<double>(entry.gppIters);
        const double lpsuRate =
            lr.iterations == 0
                ? gppRate + 1.0
                : static_cast<double>(lr.execCycles) /
                      static_cast<double>(lr.iterations);
        const bool choseLpsu = lpsuRate <= gppRate;
        XTRACE(tracer, gpp->now(), TraceComp::Sys, choseLpsu ? 1 : 0,
               TraceKind::AdaptiveDecide,
               static_cast<i64>(gppRate * 1000.0),
               static_cast<i64>(lpsuRate * 1000.0));
        if (profiler) {
            profiler->loop(pc).migrations.push_back(
                {gpp->now(), gppRate, lpsuRate, choseLpsu});
        }
        if (choseLpsu) {
            entry.state = AptEntry::State::DecidedLpsu;
            // Finish the remaining iterations on the LPSU now.
            specialize(prog, pc, regs, ~u64{0}, result);
        } else {
            // Migrate back: regs already hold the hand-back state
            // (index, bound, CIRs); the GPP resumes the loop.
            entry.state = AptEntry::State::DecidedGpp;
        }
        return;
      }
    }
}

void
XloopsSystem::adaptivePost(Addr pc, bool branch_taken)
{
    AptEntry &entry = apt.lookup(pc);
    if (entry.state != AptEntry::State::ProfileGpp)
        return;
    const Cycle now = gpp->now();
    if (entry.lastVisitValid) {
        entry.gppCycles += now - entry.lastVisit;
        entry.gppIters++;
    }
    entry.lastVisit = now;
    entry.lastVisitValid = branch_taken;  // loop exit breaks the chain
}

SysResult
XloopsSystem::run(const Program &prog, ExecMode mode, u64 maxInsts)
{
    return run(prog, mode, maxInsts, RunOptions{});
}

SysResult
XloopsSystem::run(const Program &prog, ExecMode mode, u64 maxInsts,
                  const RunOptions &opts)
{
    if (mode != ExecMode::Traditional && !cfg.hasLpsu)
        fatal(strf("configuration '", cfg.name, "' has no LPSU"));

    gpp->reset();
    apt.reset();
    fallbackPcs.clear();
    stormCooldowns.clear();
    if (lpsu)
        lpsu->reset();

    RunState rs;
    rs.pc = prog.entry;
    rs.mode = mode;

    std::unique_ptr<LockstepChecker> checker;
    if (opts.lockstep) {
        checker = std::make_unique<LockstepChecker>(prog);
        checker->start(mem, prog.entry);
    }

    lastCkptText.clear();
    lastCkptInst = 0;

    if (!opts.restoreText.empty())
        restoreCheckpoint(jsonParse(opts.restoreText), prog, rs,
                          checker.get());
    else if (!opts.restorePath.empty())
        restoreCheckpointFile(opts.restorePath, prog, rs, checker.get());

    // Next checkpoint boundary (strictly after the restored position,
    // so a restored run never re-writes the checkpoint it came from).
    u64 nextCkpt =
        opts.checkpointEvery
            ? (rs.result.gppInsts / opts.checkpointEvery + 1) *
                  opts.checkpointEvery
            : ~u64{0};

    const DecodedProgram &dec = prog.decoded();
    while (!rs.halted) {
        const Instruction &inst = dec.fetch(rs.pc);

        if (inst.isXloop() && inst.hint && cfg.hasLpsu &&
            mode != ExecMode::Traditional) {
            // xloop-entry sync point: the LPSU is about to (possibly)
            // take the loop; the shadow must agree on the state the
            // specialized iterations start from.
            if (checker)
                checker->checkEntry(rs.pc, rs.regs, mem,
                                    rs.result.gppInsts);
            if (mode == ExecMode::Specialized)
                specialize(prog, rs.pc, rs.regs, ~u64{0}, rs.result);
            else
                adaptivePre(prog, rs.pc, rs.regs, rs.result);
            // xloop-exit sync point: re-execute the specialized
            // iterations traditionally on the shadow until its index
            // register meets the LPSU hand-back index, then compare.
            if (checker)
                checker->catchUp(rs.pc, inst.rd, rs.regs, mem,
                                 gpp->now(), rs.result.gppInsts);
            // Fall through: the xloop instruction itself always
            // executes traditionally (it now sees the post-LPSU
            // index/bound and exits or continues correctly).
        }

        const Cycle stepCycle = gpp->now();
        const StepResult step =
            ExecCore::step(inst, rs.pc, rs.regs, mem, stepCycle);
        gpp->retire(inst, rs.pc, step);
        rs.result.gppInsts++;
        if (checker) {
            checker->mirrorStep(rs.pc, step, rs.regs, mem, stepCycle,
                                rs.result.gppInsts);
        }
        if (traceOut) {
            *traceOut << "[gpp @" << gpp->now() << "] 0x" << std::hex
                      << rs.pc << std::dec << ": "
                      << disassemble(inst, rs.pc) << "\n";
        }

        if (inst.isXloop() && inst.hint && cfg.hasLpsu &&
            mode == ExecMode::Adaptive) {
            adaptivePost(rs.pc, step.branchTaken);
        }

        // A taken xloop back-branch is one traditionally executed
        // iteration (the LPSU accounts specialized ones itself).
        if (profiler && inst.isXloop() && step.branchTaken) {
            LoopProfile &lp = profiler->loop(rs.pc);
            lp.tradIters++;
            if (lp.pattern.empty())
                lp.pattern = patternName(inst.pattern());
        }

        if (step.halted) {
            rs.halted = true;
            break;
        }
        rs.pc = step.nextPc;

        if (rs.result.gppInsts >= nextCkpt) {
            takeCheckpoint(prog, rs, checker.get(), opts);
            nextCkpt += opts.checkpointEvery;
        }

        if (opts.stopFlag) {
            const u32 cause =
                opts.stopFlag->load(std::memory_order_relaxed);
            if (cause != 0) {
                // Cooperative stop (SIGINT, service deadline, job
                // cancellation): leave a final checkpoint at the exact
                // stop instruction so the run is resumable, then die
                // with the matching diagnosis.
                if (!opts.checkpointPrefix.empty() || opts.checkpointSink)
                    takeCheckpoint(prog, rs, checker.get(), opts);
                SimErrorKind kind = SimErrorKind::Interrupted;
                if (cause == static_cast<u32>(StopCause::Deadline))
                    kind = SimErrorKind::Deadline;
                else if (cause == static_cast<u32>(StopCause::Cancelled))
                    kind = SimErrorKind::Cancelled;
                MachineSnapshot snap;
                snap.context = "cooperative stop request";
                snap.cycle = gpp->now();
                snap.gppPc = rs.pc;
                snap.gppInsts = rs.result.gppInsts;
                snap.occupancy.emplace_back("last_checkpoint_inst",
                                            lastCkptInst);
                if (tracer)
                    snap.recentEvents = tracer->lastEvents(16);
                throw SimError(kind,
                               strf("run stopped after ",
                                    rs.result.gppInsts,
                                    " instructions (",
                                    simErrorKindName(kind), ")"),
                               snap);
            }
        }

        if (rs.result.gppInsts >= maxInsts) {
            // A silent hang used to ride this valve into a bare
            // FatalError; dump the machine state so it is debuggable.
            MachineSnapshot snap;
            snap.context = "system instruction-limit valve";
            snap.cycle = gpp->now();
            snap.gppPc = rs.pc;
            snap.gppInsts = rs.result.gppInsts;
            snap.occupancy.emplace_back("xloops_specialized",
                                        rs.result.xloopsSpecialized);
            snap.occupancy.emplace_back("lane_insts",
                                        rs.result.laneInsts);
            if (tracer)
                snap.recentEvents = tracer->lastEvents(16);
            throw SimError(
                SimErrorKind::InstLimit,
                strf("system run exceeded ", maxInsts,
                     " instructions without halting (mode ",
                     execModeName(mode), ")"),
                snap);
        }
    }

    SysResult result = rs.result;
    result.cycles = gpp->now();
    result.stats.merge(gpp->stats());
    if (lpsu)
        result.stats.merge(lpsu->stats());
    result.stats.set("gpp_insts", result.gppInsts);
    result.stats.set("lane_insts_total", result.laneInsts);
    result.stats.set("cycles_total", result.cycles);
    return result;
}

void
XloopsSystem::takeCheckpoint(const Program &prog, const RunState &rs,
                             const LockstepChecker *checker,
                             const RunOptions &opts)
{
    lastCkptText = checkpointText(prog, rs, checker);
    lastCkptInst = rs.result.gppInsts;
    if (!opts.checkpointPrefix.empty()) {
        const std::string path =
            strf(opts.checkpointPrefix, "-", rs.result.gppInsts, ".json");
        std::ofstream out(path);
        if (!out)
            fatal("cannot write checkpoint " + path);
        out << lastCkptText;
    }
    if (opts.checkpointSink)
        opts.checkpointSink(rs.result.gppInsts, lastCkptText);
}

} // namespace xloops
