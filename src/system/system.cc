#include "system/system.h"

#include <algorithm>
#include <ostream>

#include "common/log.h"
#include "common/sim_error.h"
#include "isa/disasm.h"

namespace xloops {

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Traditional: return "T";
      case ExecMode::Specialized: return "S";
      case ExecMode::Adaptive: return "A";
    }
    return "?";
}

XloopsSystem::XloopsSystem(const SysConfig &config)
    : cfg(config), gpp(makeGppModel(config.gpp))
{
    if (cfg.hasLpsu)
        lpsu = std::make_unique<Lpsu>(cfg.lpsu, mem, gpp->dcacheModel());
}

void
XloopsSystem::loadProgram(const Program &prog)
{
    prog.loadInto(mem);
}

void
XloopsSystem::setTrace(std::ostream *out)
{
    traceOut = out;
    if (lpsu)
        lpsu->setTrace(out);
}

void
XloopsSystem::setObserver(Tracer *t, LoopProfiler *p)
{
    tracer = t;
    profiler = p;
    gpp->setTracer(t);
    if (lpsu) {
        lpsu->setTracer(t);
        lpsu->setProfiler(p);
    }
}

bool
XloopsSystem::specialize(const Program &prog, Addr pc, RegFile &regs,
                         u64 maxIters, SysResult &result)
{
    if (fallbackPcs.count(pc))
        return false;  // known oversized body: stay traditional
    const auto cooldown = stormCooldowns.find(pc);
    if (cooldown != stormCooldowns.end() &&
        cooldown->second.remaining > 0) {
        // Degraded: a recent squash storm demoted this loop to
        // traditional execution for a backed-off number of
        // encounters (one encounter per traditional iteration).
        cooldown->second.remaining--;
        return false;
    }
    const Cycle before = gpp->now();
    const LpsuResult lr = lpsu->execute(prog, pc, regs, maxIters, before);
    if (lr.fellBack && lr.reason == FallbackReason::BodyTooLarge) {
        fallbackPcs.insert(pc);
        return false;
    }
    // The GPP stalls while the LPSU owns the loop (scan + execution).
    gpp->advanceTo(before + lr.scanCycles + lr.execCycles);
    XTRACE(tracer, before + lr.scanCycles + lr.execCycles, TraceComp::Gpp,
           0, TraceKind::XloopSlice, static_cast<i64>(pc),
           static_cast<i64>(lr.scanCycles + lr.execCycles));
    result.laneInsts += lr.laneInsts;
    if (lr.iterations > 0)
        result.xloopsSpecialized++;
    if (lr.fellBack && lr.reason == FallbackReason::SquashStorm) {
        // Partial progress was handed back exactly; back off before
        // trying specialization on this loop again (exponentially,
        // so a pathologically conflicting loop converges on
        // traditional execution).
        StormCooldown &sc = stormCooldowns[pc];
        sc.level = std::min(sc.level + 1, 12u);
        sc.remaining = u64{1} << sc.level;
    }
    return true;
}

void
XloopsSystem::adaptivePre(const Program &prog, Addr pc, RegFile &regs,
                          SysResult &result)
{
    AptEntry &entry = apt.lookup(pc);
    switch (entry.state) {
      case AptEntry::State::DecidedGpp:
        return;  // traditional execution won; stay on the GPP

      case AptEntry::State::DecidedLpsu:
        specialize(prog, pc, regs, ~u64{0}, result);
        return;

      case AptEntry::State::ProfileGpp: {
        if (!apt.profilingDone(entry))
            return;  // keep measuring traditional iterations
        // GPP profiling phase complete: scan, then run the LPSU
        // profiling phase for the same number of iterations.
        const u64 profIters = entry.gppIters;
        const Cycle before = gpp->now();
        const LpsuResult lr =
            lpsu->execute(prog, pc, regs, profIters, before);
        if (lr.fellBack) {
            entry.state = AptEntry::State::DecidedGpp;
            return;
        }
        gpp->advanceTo(before + lr.scanCycles + lr.execCycles);
        XTRACE(tracer, before + lr.scanCycles + lr.execCycles,
               TraceComp::Gpp, 0, TraceKind::XloopSlice,
               static_cast<i64>(pc),
               static_cast<i64>(lr.scanCycles + lr.execCycles));
        result.laneInsts += lr.laneInsts;

        // Compare cycles-per-iteration of the two phases.
        const double gppRate = static_cast<double>(entry.gppCycles) /
                               static_cast<double>(entry.gppIters);
        const double lpsuRate =
            lr.iterations == 0
                ? gppRate + 1.0
                : static_cast<double>(lr.execCycles) /
                      static_cast<double>(lr.iterations);
        const bool choseLpsu = lpsuRate <= gppRate;
        XTRACE(tracer, gpp->now(), TraceComp::Sys, choseLpsu ? 1 : 0,
               TraceKind::AdaptiveDecide,
               static_cast<i64>(gppRate * 1000.0),
               static_cast<i64>(lpsuRate * 1000.0));
        if (profiler) {
            profiler->loop(pc).migrations.push_back(
                {gpp->now(), gppRate, lpsuRate, choseLpsu});
        }
        if (choseLpsu) {
            entry.state = AptEntry::State::DecidedLpsu;
            // Finish the remaining iterations on the LPSU now.
            specialize(prog, pc, regs, ~u64{0}, result);
        } else {
            // Migrate back: regs already hold the hand-back state
            // (index, bound, CIRs); the GPP resumes the loop.
            entry.state = AptEntry::State::DecidedGpp;
        }
        return;
      }
    }
}

void
XloopsSystem::adaptivePost(Addr pc, bool branch_taken)
{
    AptEntry &entry = apt.lookup(pc);
    if (entry.state != AptEntry::State::ProfileGpp)
        return;
    const Cycle now = gpp->now();
    if (entry.lastVisitValid) {
        entry.gppCycles += now - entry.lastVisit;
        entry.gppIters++;
    }
    entry.lastVisit = now;
    entry.lastVisitValid = branch_taken;  // loop exit breaks the chain
}

SysResult
XloopsSystem::run(const Program &prog, ExecMode mode, u64 maxInsts)
{
    if (mode != ExecMode::Traditional && !cfg.hasLpsu)
        fatal(strf("configuration '", cfg.name, "' has no LPSU"));

    gpp->reset();
    apt.reset();
    fallbackPcs.clear();
    stormCooldowns.clear();
    if (lpsu)
        lpsu->reset();

    SysResult result;
    RegFile regs;
    Addr pc = prog.entry;

    while (true) {
        const Instruction inst = prog.fetch(pc);

        if (inst.isXloop() && inst.hint && cfg.hasLpsu) {
            if (mode == ExecMode::Specialized)
                specialize(prog, pc, regs, ~u64{0}, result);
            else if (mode == ExecMode::Adaptive)
                adaptivePre(prog, pc, regs, result);
            // Fall through: the xloop instruction itself always
            // executes traditionally (it now sees the post-LPSU
            // index/bound and exits or continues correctly).
        }

        const StepResult step =
            ExecCore::step(inst, pc, regs, mem, gpp->now());
        gpp->retire(inst, pc, step);
        result.gppInsts++;
        if (traceOut) {
            *traceOut << "[gpp @" << gpp->now() << "] 0x" << std::hex
                      << pc << std::dec << ": " << disassemble(inst, pc)
                      << "\n";
        }

        if (inst.isXloop() && inst.hint && cfg.hasLpsu &&
            mode == ExecMode::Adaptive) {
            adaptivePost(pc, step.branchTaken);
        }

        // A taken xloop back-branch is one traditionally executed
        // iteration (the LPSU accounts specialized ones itself).
        if (profiler && inst.isXloop() && step.branchTaken) {
            LoopProfile &lp = profiler->loop(pc);
            lp.tradIters++;
            if (lp.pattern.empty())
                lp.pattern = patternName(inst.pattern());
        }

        if (step.halted)
            break;
        pc = step.nextPc;
        if (result.gppInsts >= maxInsts) {
            // A silent hang used to ride this valve into a bare
            // FatalError; dump the machine state so it is debuggable.
            MachineSnapshot snap;
            snap.context = "system instruction-limit valve";
            snap.cycle = gpp->now();
            snap.gppPc = pc;
            snap.gppInsts = result.gppInsts;
            snap.occupancy.emplace_back("xloops_specialized",
                                        result.xloopsSpecialized);
            snap.occupancy.emplace_back("lane_insts", result.laneInsts);
            if (tracer)
                snap.recentEvents = tracer->lastEvents(16);
            throw SimError(
                SimErrorKind::InstLimit,
                strf("system run exceeded ", maxInsts,
                     " instructions without halting (mode ",
                     execModeName(mode), ")"),
                snap);
        }
    }

    result.cycles = gpp->now();
    result.stats.merge(gpp->stats());
    if (lpsu)
        result.stats.merge(lpsu->stats());
    result.stats.set("gpp_insts", result.gppInsts);
    result.stats.set("lane_insts_total", result.laneInsts);
    result.stats.set("cycles_total", result.cycles);
    return result;
}

} // namespace xloops
