#include "system/capsule.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/json.h"
#include "common/log.h"
#include "common/serialize.h"
#include "common/sim_error.h"
#include "system/config.h"
#include "system/system.h"

namespace xloops {

namespace {

constexpr const char *capsuleSchema = "xloops-capsule-1";

ExecMode
modeFromName(const std::string &name)
{
    if (name == "T")
        return ExecMode::Traditional;
    if (name == "S")
        return ExecMode::Specialized;
    if (name == "A")
        return ExecMode::Adaptive;
    fatal("capsule has an unknown execution mode '" + name + "'");
}

void
writeDivergence(JsonWriter &w, const DivergenceInfo &d)
{
    w.beginObject();
    w.field("site", d.site);
    w.field("pc", strf("0x", std::hex, d.pc));
    w.field("inst_index", d.instIndex);
    w.field("iteration", static_cast<i64>(d.iteration));
    w.field("reg_mismatch", d.regMismatch);
    w.field("reg", unsigned{d.reg});
    w.field("main_value", u64{d.mainValue});
    w.field("shadow_value", u64{d.shadowValue});
    w.field("mem_mismatch", d.memMismatch);
    w.field("mem_addr", strf("0x", std::hex, d.memAddr));
    w.field("main_byte", unsigned{d.mainByte});
    w.field("shadow_byte", unsigned{d.shadowByte});
    w.endObject();
}

DivergenceInfo
readDivergence(const JsonValue &v)
{
    DivergenceInfo d;
    d.site = v.at("site").asString();
    d.pc = static_cast<Addr>(parseU64(v.at("pc").asString()));
    d.instIndex = v.at("inst_index").asU64();
    d.iteration = v.at("iteration").asI64();
    d.regMismatch = v.at("reg_mismatch").asBool();
    d.reg = static_cast<RegId>(v.at("reg").asU64());
    d.mainValue = static_cast<u32>(v.at("main_value").asU64());
    d.shadowValue = static_cast<u32>(v.at("shadow_value").asU64());
    d.memMismatch = v.at("mem_mismatch").asBool();
    d.memAddr = static_cast<Addr>(parseU64(v.at("mem_addr").asString()));
    d.mainByte = static_cast<u8>(v.at("main_byte").asU64());
    d.shadowByte = static_cast<u8>(v.at("shadow_byte").asU64());
    return d;
}

/** One re-execution's result, normalized for comparison. */
struct ReplayOutcome
{
    bool errored = false;
    std::string kind;           ///< simErrorKindName when errored
    bool isDivergence = false;
    DivergenceInfo div;
    u64 instsAtError = 0;
};

} // namespace

void
writeCapsule(const std::string &path, const CapsuleRunSpec &spec,
             const CapsuleContext &ctx, const SimError &error,
             const std::string &flightJson)
{
    if (!ctx.valid)
        fatal("cannot write a capsule: run context was not captured");

    std::ofstream out(path);
    if (!out)
        fatal("cannot write " + path);

    JsonWriter w(out, /*pretty=*/true);
    w.beginObject();
    w.field("schema", capsuleSchema);
    w.field("config", spec.configName);
    w.field("mode", spec.modeName);
    w.field("workload", spec.workload);
    w.field("max_insts", spec.maxInsts);
    w.field("lockstep", spec.lockstep);

    w.key("faults").beginObject();
    w.field("seed", spec.injectSeed);
    w.field("rate_bits", doubleBits(spec.injectRate));
    w.field("arch_rate_bits", doubleBits(spec.archCorruptRate));
    w.field("have_watchdog", spec.haveWatchdog);
    w.field("watchdog_cycles", spec.watchdogCycles);
    w.endObject();

    w.key("error").beginObject();
    w.field("kind", simErrorKindName(error.kind()));
    w.field("exit_code", error.exitCode());
    w.field("message", std::string(error.what()));
    w.field("inst_count", error.snapshot().gppInsts);
    if (const auto *de = dynamic_cast<const DivergenceError *>(&error)) {
        w.key("divergence");
        writeDivergence(w, de->divergence());
    }
    w.endObject();

    w.field("program_hash", strf("0x", std::hex, ctx.program.hash()));
    w.key("program").beginObject();
    ctx.program.saveState(w);
    w.endObject();

    // The complete initial image (program text/data PLUS kernel input
    // data written after load): a Program alone cannot reproduce it.
    w.key("initial_mem").beginObject();
    ctx.initialMem.saveState(w);
    w.endObject();

    w.field("checkpoint_inst", ctx.lastCheckpointInst);
    if (!ctx.lastCheckpoint.empty()) {
        w.key("checkpoint");
        writeJsonValue(w, jsonParse(ctx.lastCheckpoint));
    }

    // Service context: what the fleet was doing when this job died.
    if (!flightJson.empty()) {
        w.key("flight");
        writeJsonValue(w, jsonParse(flightJson));
    }

    w.endObject();
    out << "\n";
}

int
replayCapsule(const std::string &path)
{
    std::ostream &out = std::cout;

    std::ifstream in(path);
    if (!in)
        fatal("cannot read " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const JsonValue v = jsonParse(buf.str());

    if (v.at("schema").asString() != capsuleSchema)
        fatal(strf("'", path, "' is not an ", capsuleSchema,
                   " capsule"));

    // ---- Rebuild the run exactly as the capsule describes it. ----
    const std::string configName = v.at("config").asString();
    SysConfig cfg = configs::byName(configName);
    const JsonValue &fv = v.at("faults");
    const u64 injectSeed = fv.at("seed").asU64();
    const double injectRate = doubleFromBits(fv.at("rate_bits").asString());
    if (injectSeed != 0)
        cfg.lpsu.faults = FaultConfig::uniform(injectSeed, injectRate);
    cfg.lpsu.faults.archCorruptRate =
        doubleFromBits(fv.at("arch_rate_bits").asString());
    if (fv.at("have_watchdog").asBool())
        cfg.lpsu.watchdogCycles = fv.at("watchdog_cycles").asU64();

    const ExecMode mode = modeFromName(v.at("mode").asString());
    const u64 maxInsts = v.at("max_insts").asU64();
    const bool lockstep = v.at("lockstep").asBool();

    const Program prog = Program::fromJson(v.at("program"));
    if (prog.hash() != parseU64(v.at("program_hash").asString()))
        fatal("capsule program image does not match its recorded hash");

    const JsonValue &ev = v.at("error");
    const std::string expectedKind = ev.at("kind").asString();
    const bool expectDivergence = ev.has("divergence");
    DivergenceInfo expectedDiv;
    if (expectDivergence)
        expectedDiv = readDivergence(ev.at("divergence"));
    const u64 errorInsts = ev.at("inst_count").asU64();

    out << "replay: capsule " << path << " (config " << configName
        << ", mode " << v.at("mode").asString() << ", workload "
        << v.at("workload").asString() << ")\n";
    out << "replay: recorded error: " << expectedKind << " after "
        << errorInsts << " insts\n";
    if (expectDivergence)
        out << "replay: recorded divergence: " << expectedDiv.render()
            << "\n";

    const auto runOnce = [&](const RunOptions &opts) {
        ReplayOutcome o;
        XloopsSystem sys(cfg);
        sys.memory().loadState(v.at("initial_mem"));
        try {
            sys.run(prog, mode, maxInsts, opts);
        } catch (const DivergenceError &e) {
            o.errored = true;
            o.kind = simErrorKindName(e.kind());
            o.isDivergence = true;
            o.div = e.divergence();
            o.instsAtError = e.snapshot().gppInsts;
        } catch (const SimError &e) {
            o.errored = true;
            o.kind = simErrorKindName(e.kind());
            o.instsAtError = e.snapshot().gppInsts;
        }
        return o;
    };

    const auto matches = [&](const ReplayOutcome &o) {
        if (!o.errored || o.kind != expectedKind)
            return false;
        if (expectDivergence)
            return o.isDivergence && o.div.sameAs(expectedDiv);
        return true;
    };

    // ---- Phase 1: full re-execution, collecting checkpoints for the
    // bisection phase in memory along the way. ----
    std::vector<std::pair<u64, std::string>> ckpts;
    RunOptions opts;
    opts.lockstep = lockstep;
    opts.checkpointEvery = std::max<u64>(1, errorInsts / 8);
    opts.checkpointSink = [&](u64 instCount, const std::string &json) {
        ckpts.emplace_back(instCount, json);
    };
    const ReplayOutcome full = runOnce(opts);

    if (!full.errored) {
        out << "replay: FAILED to reproduce: run completed cleanly\n";
        return 2;
    }
    out << "replay: reproduced error: " << full.kind << " after "
        << full.instsAtError << " insts\n";
    if (full.isDivergence)
        out << "replay: reproduced divergence: " << full.div.render()
            << "\n";
    const bool identical = matches(full);
    out << "replay: identical to capsule: " << (identical ? "yes" : "NO")
        << "\n";
    if (!identical)
        return 2;

    // ---- Phase 2: re-verify from the capsule's embedded checkpoint
    // (the nearest one taken before the original failure). ----
    if (v.has("checkpoint")) {
        std::ostringstream ck;
        JsonWriter cw(ck, /*pretty=*/true);
        writeJsonValue(cw, v.at("checkpoint"));
        RunOptions ropts;
        ropts.lockstep = lockstep;
        ropts.restoreText = ck.str();
        const ReplayOutcome fromCkpt = runOnce(ropts);
        const bool ok = matches(fromCkpt);
        out << "replay: from embedded checkpoint (inst "
            << v.at("checkpoint_inst").asU64()
            << "): " << (ok ? "identical" : "NOT identical") << "\n";
        if (!ok)
            return 2;
    }

    // ---- Phase 3: bisect over the replay's own checkpoints for the
    // latest start point that still reproduces the identical error,
    // bounding the first divergent iteration to the tightest
    // [checkpoint, failure] instruction window. ----
    // Every checkpoint precedes the failure, so the divergence should
    // reproduce from all of them; bisection confirms that and names
    // the latest verified start point (a non-reproducing checkpoint
    // would itself be a determinism bug worth knowing about).
    if (!ckpts.empty()) {
        size_t lo = 0, hi = ckpts.size() - 1;
        size_t best = ckpts.size();  // none verified yet
        unsigned tested = 0;
        while (lo <= hi) {
            const size_t mid = lo + (hi - lo) / 2;
            RunOptions bopts;
            bopts.lockstep = lockstep;
            bopts.restoreText = ckpts[mid].second;
            tested++;
            if (matches(runOnce(bopts))) {
                best = mid;
                if (mid + 1 > hi)
                    break;
                lo = mid + 1;
            } else {
                if (mid == 0)
                    break;
                hi = mid - 1;
            }
        }
        if (best != ckpts.size()) {
            out << "replay: bisection: divergence reproduces from inst "
                << ckpts[best].first << "; first divergent iteration "
                << "localized to insts (" << ckpts[best].first << ", "
                << full.instsAtError << "] (" << tested
                << " checkpoints tested)\n";
            if (full.isDivergence)
                out << "replay: first divergent iteration "
                    << full.div.iteration << " of xloop at pc 0x"
                    << std::hex << full.div.pc << std::dec << "\n";
        } else {
            out << "replay: bisection: no collected checkpoint "
                << "reproduced the error (" << tested << " tested)\n";
            return 2;
        }
    }

    out << "replay: OK\n";
    return 0;
}

} // namespace xloops
