#include "system/sweep.h"

#include <sstream>

#include "common/fault.h"
#include "common/json.h"
#include "common/loop_profile.h"
#include "common/pool.h"
#include "common/sim_error.h"
#include "energy/energy.h"
#include "kernels/kernel.h"
#include "system/report.h"

namespace xloops {

namespace {

SweepCellResult
runOneCell(const SweepCell &cell, size_t index, const SweepOptions &opts)
{
    SysConfig cfg = cell.config;
    if (opts.injectSeed != 0) {
        // The cell's adversarial schedule is a function of the cell,
        // not of the worker or the sweep's scheduling.
        cfg.lpsu.faults =
            FaultConfig::uniform(taskSeed(opts.injectSeed, index),
                                 opts.injectRate);
    }

    SweepCellResult r;
    LoopProfiler profiler;
    RunHooks hooks;
    hooks.maxInsts = opts.maxInsts;
    if (opts.captureStats)
        hooks.profiler = &profiler;

    KernelRun run;
    try {
        run = runKernel(kernelByName(cell.kernel), cfg, cell.mode,
                        cell.gpBinary, hooks);
    } catch (const SimError &err) {
        // A wedged or diverged cell is a result, not a reason to lose
        // the other few hundred cells of the sweep.
        r.passed = false;
        r.simError = true;
        r.error = strf(simErrorKindName(err.kind()), ": ", err.what());
        return r;
    }

    r.passed = run.passed;
    r.error = run.error;
    r.cycles = run.result.cycles;
    r.gppInsts = run.result.gppInsts;
    r.laneInsts = run.result.laneInsts;
    r.xloopsSpecialized = run.result.xloopsSpecialized;
    r.xlDynInsts = run.xlDynInsts;
    r.stats = run.result.stats;
    const EnergyModel energy;
    r.energyNj = energy.dynamicEnergy(cfg, run.result.stats).totalNj();
    if (opts.captureStats) {
        std::ostringstream ss;
        writeStatsJson(ss, cfg.name, execModeName(cell.mode),
                       cell.kernel, run.result, profiler, nullptr);
        r.statsJson = ss.str();
    }
    return r;
}

} // namespace

std::vector<SweepCellResult>
runSweep(const std::vector<SweepCell> &cells, const SweepOptions &opts)
{
    const WorkerPool pool(opts.jobs);
    RunControl control;
    control.cancel = opts.cancel;
    control.deadlineMs = opts.deadlineMs;
    return pool.map<SweepCellResult>(
        cells.size(),
        [&](size_t i) { return runOneCell(cells[i], i, opts); },
        control);
}

void
writeSweepJson(std::ostream &out, const std::vector<SweepCell> &cells,
               const std::vector<SweepCellResult> &results,
               const SweepOptions &opts)
{
    XL_ASSERT(cells.size() == results.size(),
              "sweep report needs one result per cell");
    size_t passed = 0;
    for (const SweepCellResult &r : results)
        passed += r.passed ? 1 : 0;

    JsonWriter w(out, /*pretty=*/true);
    w.beginObject();
    w.field("schema", "xloops-sweep-1");
    w.field("num_cells", static_cast<u64>(cells.size()));
    w.field("num_passed", static_cast<u64>(passed));
    w.field("inject_seed", opts.injectSeed);
    w.field("inject_rate", opts.injectRate);
    w.field("max_insts", opts.maxInsts);
    w.key("cells").beginArray();
    for (size_t i = 0; i < cells.size(); i++) {
        const SweepCell &cell = cells[i];
        const SweepCellResult &r = results[i];
        w.beginObject();
        w.field("kernel", cell.kernel);
        w.field("config", cell.config.name);
        w.field("mode", execModeName(cell.mode));
        w.field("gp_binary", cell.gpBinary);
        w.field("passed", r.passed);
        if (!r.passed) {
            w.field("sim_error", r.simError);
            w.field("error", r.error);
        }
        w.field("cycles", r.cycles);
        w.field("gpp_insts", r.gppInsts);
        w.field("lane_insts", r.laneInsts);
        w.field("xloops_specialized", r.xloopsSpecialized);
        w.field("xl_dyn_insts", r.xlDynInsts);
        w.field("energy_nj", r.energyNj);
        if (!r.statsJson.empty()) {
            w.key("stats");
            writeJsonValue(w, jsonParse(r.statsJson));
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << "\n";
}

std::string
sweepJsonText(const std::vector<SweepCell> &cells,
              const std::vector<SweepCellResult> &results,
              const SweepOptions &opts)
{
    std::ostringstream ss;
    writeSweepJson(ss, cells, results, opts);
    return ss.str();
}

std::vector<SweepCell>
crossProduct(const std::vector<std::string> &kernels,
             const std::vector<SysConfig> &configs,
             const std::vector<ExecMode> &modes)
{
    std::vector<SweepCell> cells;
    for (const std::string &kernel : kernels) {
        for (const SysConfig &cfg : configs) {
            for (const ExecMode mode : modes) {
                if (mode != ExecMode::Traditional && !cfg.hasLpsu)
                    continue;  // S/A need an LPSU; skip, don't die
                cells.push_back({kernel, cfg, mode, false});
            }
        }
    }
    return cells;
}

} // namespace xloops
