/**
 * @file
 * The canonical "xloops-stats-1" report writer, shared by `xsim
 * --stats-json`, capsule replay, and the checkpoint round-trip tests
 * (which diff two of these files byte-for-byte — so there is exactly
 * one serializer and it is deterministic: stable key order, no
 * timestamps, no float formatting surprises).
 */

#ifndef XLOOPS_SYSTEM_REPORT_H
#define XLOOPS_SYSTEM_REPORT_H

#include <ostream>
#include <string>

#include "common/loop_profile.h"
#include "common/trace.h"
#include "system/system.h"

namespace xloops {

/** Write the full stats report ("xloops-stats-1") to @p out. */
void writeStatsJson(std::ostream &out, const std::string &cfgName,
                    const std::string &modeName,
                    const std::string &workload, const SysResult &result,
                    const LoopProfiler &profiler, const Tracer *tracer);

/** writeStatsJson to @p path; throws FatalError when unwritable. */
void writeStatsJsonFile(const std::string &path,
                        const std::string &cfgName,
                        const std::string &modeName,
                        const std::string &workload,
                        const SysResult &result,
                        const LoopProfiler &profiler,
                        const Tracer *tracer);

} // namespace xloops

#endif // XLOOPS_SYSTEM_REPORT_H
