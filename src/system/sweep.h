/**
 * @file
 * Parallel experiment sweeps: the evaluation cross-product
 * (kernel × execution mode × system configuration) that every paper
 * table/figure walks, run cell-by-cell across a WorkerPool.
 *
 * Each cell executes in a fully isolated XloopsSystem built inside
 * the worker (own memory, own GPP/LPSU models, own profiler, own
 * fault RNG pool), so cells share nothing and any worker count
 * produces identical results. Fault-injection seeds are derived per
 * cell from (rootSeed, cell index) via taskSeed(), never from the
 * worker, so the adversarial schedule of cell i is the same whether
 * the sweep ran on 1 thread or 16.
 *
 * The merged report ("xloops-sweep-1") embeds each cell's canonical
 * "xloops-stats-1" document and is byte-identical for every --jobs
 * value — enforced by tests/test_sweep_determinism.cc.
 */

#ifndef XLOOPS_SYSTEM_SWEEP_H
#define XLOOPS_SYSTEM_SWEEP_H

#include <ostream>
#include <string>
#include <vector>

#include "common/pool.h"
#include "system/system.h"

namespace xloops {

/** One experiment cell: a kernel on a configuration under a mode. */
struct SweepCell
{
    std::string kernel;         ///< registered kernel name
    SysConfig config;           ///< full config (DSE points mutate it)
    ExecMode mode = ExecMode::Specialized;
    bool gpBinary = false;      ///< run the serialized GP-ISA binary
};

/** Sweep-wide options. */
struct SweepOptions
{
    unsigned jobs = 0;          ///< worker threads; 0 = defaultJobs()
    u64 injectSeed = 0;         ///< root fault seed; 0 = no injection
    double injectRate = 0.0;    ///< per-opportunity fault probability
    u64 maxInsts = 500'000'000;
    /** Capture each cell's "xloops-stats-1" document (the merged
     *  report needs it; pure-timing benches can skip the cost). */
    bool captureStats = true;

    /** Whole-sweep wall-clock budget in ms (0 = none): cells not
     *  started in time are skipped and runSweep throws
     *  SimError(Deadline) — a hard quota, not a per-cell failure. */
    u64 deadlineMs = 0;

    /** Optional external cancellation (same semantics: cells not yet
     *  started are skipped, runSweep throws SimError(Cancelled)). */
    const CancelToken *cancel = nullptr;
};

/** Outcome of one cell (everything the reporters need, plain data). */
struct SweepCellResult
{
    bool passed = false;
    std::string error;          ///< golden-checker or SimError message
    bool simError = false;      ///< the run died with a SimError
    Cycle cycles = 0;
    u64 gppInsts = 0;
    u64 laneInsts = 0;
    u64 xloopsSpecialized = 0;
    u64 xlDynInsts = 0;         ///< serial-semantics dynamic insts
    double energyNj = 0.0;
    StatGroup stats;            ///< merged gpp.*/lpsu.*/dcache.*
    std::string statsJson;      ///< "xloops-stats-1" (captureStats)
};

/**
 * Run every cell across opts.jobs workers; results are returned in
 * cell order regardless of scheduling. A cell whose run raises a
 * SimError (watchdog, limits, divergence) is reported as a failed
 * cell rather than aborting the remaining cells.
 */
std::vector<SweepCellResult> runSweep(const std::vector<SweepCell> &cells,
                                      const SweepOptions &opts);

/**
 * Write the merged "xloops-sweep-1" report: one entry per cell with
 * its identity, outcome, and embedded "xloops-stats-1" stats
 * document. Deterministic: cell order is submission order, keys are
 * fixed, and nothing scheduling-dependent (worker count, timing) is
 * emitted.
 */
void writeSweepJson(std::ostream &out,
                    const std::vector<SweepCell> &cells,
                    const std::vector<SweepCellResult> &results,
                    const SweepOptions &opts);

/** writeSweepJson into a string (determinism tests diff these). */
std::string sweepJsonText(const std::vector<SweepCell> &cells,
                          const std::vector<SweepCellResult> &results,
                          const SweepOptions &opts);

/** Build the full cross product in kernel-major deterministic order. */
std::vector<SweepCell> crossProduct(
    const std::vector<std::string> &kernels,
    const std::vector<SysConfig> &configs,
    const std::vector<ExecMode> &modes);

} // namespace xloops

#endif // XLOOPS_SYSTEM_SWEEP_H
