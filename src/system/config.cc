#include "system/config.h"

#include "common/log.h"

namespace xloops {
namespace configs {

SysConfig
io()
{
    SysConfig cfg;
    cfg.name = "io";
    cfg.gpp.kind = GppConfig::Kind::InOrder;
    cfg.gpp.width = 1;
    cfg.gpp.branchPenalty = 2;
    return cfg;
}

SysConfig
ooo2()
{
    SysConfig cfg;
    cfg.name = "ooo/2";
    cfg.gpp.kind = GppConfig::Kind::OutOfOrder;
    cfg.gpp.width = 2;
    cfg.gpp.robSize = 64;
    cfg.gpp.iqSize = 32;
    cfg.gpp.lsqEntries = 16;
    cfg.gpp.memPorts = 1;
    cfg.gpp.branchPenalty = 10;
    return cfg;
}

SysConfig
ooo4()
{
    SysConfig cfg;
    cfg.name = "ooo/4";
    cfg.gpp.kind = GppConfig::Kind::OutOfOrder;
    cfg.gpp.width = 4;
    cfg.gpp.robSize = 128;
    cfg.gpp.iqSize = 64;
    cfg.gpp.lsqEntries = 32;
    cfg.gpp.memPorts = 2;
    cfg.gpp.branchPenalty = 10;
    return cfg;
}

SysConfig
withLpsu(SysConfig base)
{
    base.name += "+x";
    base.hasLpsu = true;
    base.lpsu = LpsuConfig{};
    return base;
}

SysConfig ioX() { return withLpsu(io()); }
SysConfig ooo2X() { return withLpsu(ooo2()); }
SysConfig ooo4X() { return withLpsu(ooo4()); }

SysConfig
ooo4X4t()
{
    SysConfig cfg = ooo4X();
    cfg.name = "ooo/4+x4+t";
    cfg.lpsu.multithreading = true;
    return cfg;
}

SysConfig
ooo4X8()
{
    SysConfig cfg = ooo4X();
    cfg.name = "ooo/4+x8";
    cfg.lpsu.lanes = 8;
    return cfg;
}

SysConfig
ooo4X8r()
{
    SysConfig cfg = ooo4X8();
    cfg.name = "ooo/4+x8+r";
    cfg.lpsu.memPorts = 2;
    cfg.lpsu.llfus = 2;
    return cfg;
}

SysConfig
ooo4X8rm()
{
    SysConfig cfg = ooo4X8r();
    cfg.name = "ooo/4+x8+r+m";
    cfg.lpsu.lsqLoadEntries = 16;
    cfg.lpsu.lsqStoreEntries = 16;
    return cfg;
}

SysConfig
ioXf()
{
    SysConfig cfg = ioX();
    cfg.name = "io+xf";
    cfg.lpsu.interLaneForwarding = true;
    return cfg;
}

SysConfig
ooo4Xf()
{
    SysConfig cfg = ooo4X();
    cfg.name = "ooo/4+xf";
    cfg.lpsu.interLaneForwarding = true;
    return cfg;
}

SysConfig
ioX2w()
{
    SysConfig cfg = ioX();
    cfg.name = "io+x2w";
    cfg.lpsu.laneIssueWidth = 2;
    return cfg;
}

SysConfig
ooo4X2w()
{
    SysConfig cfg = ooo4X();
    cfg.name = "ooo/4+x2w";
    cfg.lpsu.laneIssueWidth = 2;
    return cfg;
}

SysConfig
byName(const std::string &name)
{
    for (const auto &cfg : mainGrid())
        if (cfg.name == name)
            return cfg;
    if (name == "ooo/4+x4+t") return ooo4X4t();
    if (name == "ooo/4+x8") return ooo4X8();
    if (name == "ooo/4+x8+r") return ooo4X8r();
    if (name == "ooo/4+x8+r+m") return ooo4X8rm();
    if (name == "io+xf") return ioXf();
    if (name == "ooo/4+xf") return ooo4Xf();
    if (name == "io+x2w") return ioX2w();
    if (name == "ooo/4+x2w") return ooo4X2w();
    fatal(strf("unknown system configuration '", name, "'"));
}

std::vector<SysConfig>
mainGrid()
{
    return {io(), ooo2(), ooo4(), ioX(), ooo2X(), ooo4X()};
}

} // namespace configs
} // namespace xloops
