/**
 * @file
 * The full XLOOPS system: a GPP (in-order or out-of-order) optionally
 * augmented with an LPSU, supporting the paper's three execution
 * modes — traditional, specialized, adaptive — over the same binary.
 */

#ifndef XLOOPS_SYSTEM_SYSTEM_H
#define XLOOPS_SYSTEM_SYSTEM_H

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "asm/program.h"
#include "common/stats.h"
#include "cpu/gpp.h"
#include "lpsu/lpsu.h"
#include "mem/memory.h"
#include "system/adaptive.h"
#include "system/config.h"

namespace xloops {

class LockstepChecker;

/** How xloop instructions are executed. */
enum class ExecMode
{
    Traditional,   ///< xloop = branch, xi = add (any GPP)
    Specialized,   ///< hinted xloops run on the LPSU
    Adaptive,      ///< profile both, migrate to the winner
};

const char *execModeName(ExecMode mode);

/** Outcome of one program run. */
struct SysResult
{
    Cycle cycles = 0;
    u64 gppInsts = 0;
    u64 laneInsts = 0;
    u64 xloopsSpecialized = 0;
    StatGroup stats;  ///< merged gpp.*, lpsu.*, dcache.* counters
};

/**
 * Why a cooperative stop was requested (the nonzero values a
 * RunOptions::stopFlag may take); selects the SimErrorKind the run
 * dies with, which in turn drives exit codes and the service retry
 * taxonomy (Deadline retries, Interrupted/Cancelled never do).
 */
enum class StopCause : u32
{
    None = 0,
    Interrupted = 1,  ///< SIGINT/SIGTERM (exit 6, final checkpoint)
    Deadline = 2,     ///< service wall-clock watchdog fired
    Cancelled = 3,    ///< job cancelled by its submitter
};

/** Robustness options of one run (all off by default). */
struct RunOptions
{
    /** Differential lockstep verification: shadow-execute the golden
     *  functional model and compare architectural state at every
     *  commit and xloop sync point (DivergenceError on mismatch). */
    bool lockstep = false;

    /** Write a checkpoint every N committed GPP instructions
     *  (0 disables). */
    u64 checkpointEvery = 0;

    /** Checkpoint file prefix: files are "<prefix>-<inst>.json".
     *  Empty keeps checkpoints in memory only (capsules / sinks). */
    std::string checkpointPrefix;

    /** Resume from this checkpoint file before executing. */
    std::string restorePath;

    /** Resume from this in-memory checkpoint document (takes
     *  precedence over restorePath; capsule replay restores from the
     *  embedded checkpoint without touching the filesystem). */
    std::string restoreText;

    /** Observer invoked with each checkpoint's serialized text (replay
     *  bisection holds checkpoints in memory through this). */
    std::function<void(u64 instCount, const std::string &json)>
        checkpointSink;

    /**
     * Cooperative stop flag, polled once per committed GPP
     * instruction (an LPSU-owned loop finishes its slice first, so
     * the stop lands at the next GPP commit boundary). When it
     * becomes nonzero the run takes a final checkpoint (when a
     * checkpoint prefix or sink is configured) and throws a SimError
     * whose kind matches the StopCause — signal handlers and the
     * service watchdog write it from other threads.
     */
    const std::atomic<u32> *stopFlag = nullptr;
};

class XloopsSystem
{
  public:
    explicit XloopsSystem(const SysConfig &config);

    /** Copy program text+data into system memory. */
    void loadProgram(const Program &prog);

    /** The functional memory (for kernel input setup / output checks). */
    MainMemory &memory() { return mem; }

    /**
     * Run @p prog from entry to halt under @p mode.
     * The caller must have loaded the program (and any input data).
     */
    SysResult run(const Program &prog, ExecMode mode,
                  u64 maxInsts = 500'000'000);

    /** run() with lockstep / checkpoint / restore options. */
    SysResult run(const Program &prog, ExecMode mode, u64 maxInsts,
                  const RunOptions &opts);

    /** The most recent checkpoint of the current/last run (empty when
     *  none was taken): capsules embed it as the replay start point. */
    const std::string &lastCheckpoint() const { return lastCkptText; }
    u64 lastCheckpointInst() const { return lastCkptInst; }

    const SysConfig &config() const { return cfg; }
    GppModel &gppModel() { return *gpp; }
    Lpsu &lpsuModel() { return *lpsu; }

    /**
     * Stream a per-instruction execution trace (GPP commits plus LPSU
     * loop-level events) to @p out; nullptr disables tracing.
     */
    void setTrace(std::ostream *out);

    /**
     * Attach structured observers: a cycle-accurate event tracer and
     * a per-loop profiler (either may be null). Observers never alter
     * timing or statistics — stats dumps are byte-identical with and
     * without them.
     */
    void setObserver(Tracer *tracer, LoopProfiler *profiler);

  private:
    /** The in-flight state of one run() (checkpointable between any
     *  two committed instructions). */
    struct RunState
    {
        RegFile regs;
        Addr pc = 0;
        ExecMode mode = ExecMode::Traditional;
        SysResult result;
        bool halted = false;
    };

    /** Serialize the complete machine + run state ("xloops-ckpt-1"):
     *  defined in system/checkpoint.cc. */
    std::string checkpointText(const Program &prog, const RunState &rs,
                               const LockstepChecker *checker) const;

    /** Inverse of checkpointText (validates schema, config name, mode
     *  and program hash). */
    void restoreCheckpoint(const JsonValue &v, const Program &prog,
                           RunState &rs, LockstepChecker *checker);

    /** Read + parse + restore a checkpoint file. */
    void restoreCheckpointFile(const std::string &path,
                               const Program &prog, RunState &rs,
                               LockstepChecker *checker);

    /** Take one checkpoint: remember it, write the file (when a
     *  prefix is configured), feed the sink. */
    void takeCheckpoint(const Program &prog, const RunState &rs,
                        const LockstepChecker *checker,
                        const RunOptions &opts);

    /** Run LPSU specialized execution for the xloop at @p pc;
     *  returns false when the LPSU fell back (body too large). */
    bool specialize(const Program &prog, Addr pc, RegFile &regs,
                    u64 maxIters, SysResult &result);

    /** Adaptive pre-execution hook for a hinted xloop. */
    void adaptivePre(const Program &prog, Addr pc, RegFile &regs,
                     SysResult &result);

    /** Adaptive post-execution profiling bookkeeping. */
    void adaptivePost(Addr pc, bool branchTaken);

    /** Degradation state for an xloop that hit a squash storm: the
     *  loop runs traditionally for `remaining` further encounters,
     *  and each new storm doubles the next cooldown (exponential
     *  backoff, capped). */
    struct StormCooldown
    {
        unsigned level = 0;
        u64 remaining = 0;
    };

    SysConfig cfg;
    MainMemory mem;
    std::unique_ptr<GppModel> gpp;
    std::unique_ptr<Lpsu> lpsu;
    AdaptiveController apt;
    std::set<Addr> fallbackPcs;  ///< xloops whose body exceeded the IB
    std::map<Addr, StormCooldown> stormCooldowns;
    std::ostream *traceOut = nullptr;
    Tracer *tracer = nullptr;
    LoopProfiler *profiler = nullptr;
    std::string lastCkptText;
    u64 lastCkptInst = 0;
};

} // namespace xloops

#endif // XLOOPS_SYSTEM_SYSTEM_H
