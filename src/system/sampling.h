/**
 * @file
 * SMARTS-style sampled cycle simulation.
 *
 * Full cycle-accurate simulation prices every instruction through the
 * GPP timing model; sampled simulation buys back almost all of that
 * wall-clock by executing the program on the threaded functional fast
 * path (cpu/threaded.h) and dropping into cycle-accurate detail only
 * inside periodically selected measurement windows — the systematic
 * sampling regime of "SMARTS: Accelerating Microarchitecture
 * Simulation via Rigorous Statistical Sampling" (Wunderlich et al.).
 *
 * One sampling unit is `period` dynamic instructions. Each period
 * contains a single detailed region of `warmup + window` instructions
 * placed at a random phase offset drawn once per run from the named
 * RNG stream "sample.select" (so window placement is deterministic
 * for a fixed seed and independent of every other stream). The warmup
 * prefix runs through the timing model to re-warm caches and pipeline
 * state after the functional gap but its cycles are excluded; the
 * window suffix contributes one CPI observation. The estimate is the
 * mean of the window CPIs with a normal-approximation confidence
 * interval (z * s / sqrt(n)), floored at a documented minimum relative
 * half-width — the sampling-resolution floor below which the interval
 * would claim more precision than detailed warming can deliver.
 *
 * Functional architectural state is *exact*, not sampled: a sampled
 * run retires every instruction of the program (fast-forwarded or
 * detailed), so final registers, memory, and instruction counts are
 * bit-identical to a pure functional run and kernel output validation
 * still applies. Only cycle counts are estimated. (The one caveat is
 * csrr: the cycle CSR reads the retired-instruction clock, as in the
 * functional executor, rather than the partially-advanced timing
 * clock — Table II kernels never read it.)
 *
 * Timing models traditional execution (xloop = increment-compare-
 * branch on the configured GPP). Checkpoint seeding: restore() accepts
 * an xloops-ckpt-1 document and resumes sampling from its memory,
 * registers, pc, and instruction count — and always invalidates the
 * executor's superblock cache, because the restored image may disagree
 * with text the executor has already decoded.
 */

#ifndef XLOOPS_SYSTEM_SAMPLING_H
#define XLOOPS_SYSTEM_SAMPLING_H

#include <memory>
#include <vector>

#include "asm/program.h"
#include "cpu/gpp.h"
#include "cpu/threaded.h"
#include "mem/memory.h"
#include "system/config.h"

namespace xloops {

class JsonWriter;

/** Sampling regime of one run. */
struct SampleOptions
{
    u64 period = 10'000;   ///< instructions per sampling unit
    u64 window = 500;      ///< measured instructions per window
    u64 warmup = ~u64{0};  ///< detailed warmup before each window
                           ///< (default ~0 = same as window)
    u64 seed = 0;          ///< root seed for window placement
    double z = 2.576;      ///< CI quantile (99% two-sided normal)
    double minRelHalfWidth = 0.02;  ///< resolution floor (fraction of
                                    ///< the estimate)
    u64 maxInsts = 500'000'000;     ///< total-instruction safety valve
};

/** Outcome of one sampled run. */
struct SampleResult
{
    u64 totalInsts = 0;     ///< every instruction retired
    u64 ffInsts = 0;        ///< fast-forwarded functionally
    u64 warmupInsts = 0;    ///< detailed, cycles excluded
    u64 measuredInsts = 0;  ///< detailed, inside full windows
    Cycle measuredCycles = 0;
    u64 windows = 0;        ///< full windows measured
    u64 phase = 0;          ///< detailed-region offset within a period
    double cpiEst = 0.0;
    double cpiHalfWidth = 0.0;  ///< CI half-width around cpiEst
    double cpiStddev = 0.0;     ///< sample stddev of window CPIs
    Cycle estCycles = 0;        ///< round(cpiEst * totalInsts)
    std::vector<double> windowCpi;
    bool halted = false;
};

/**
 * A sampled simulation: threaded functional fast-forward + periodic
 * cycle-accurate windows on the configured GPP model. Mirrors the
 * XloopsSystem surface (construct, loadProgram, run) closely enough
 * that callers can switch between full and sampled runs.
 */
class SampledSimulation
{
  public:
    SampledSimulation(const SysConfig &config, const SampleOptions &options);

    MainMemory &memory() { return mem; }
    ThreadedExecutor &executor() { return exec; }

    /** Copy program text+data into memory. */
    void loadProgram(const Program &prog);

    /**
     * Seed from an xloops-ckpt-1 document: registers, pc, memory, and
     * instruction count are restored (the timing state is not — the
     * next window's warmup rebuilds it, which is the point of detailed
     * warming) and the superblock cache is invalidated. Validates the
     * schema and program hash.
     */
    void restore(const std::string &checkpointText, const Program &prog);

    /** Run @p prog from entry (or the restored position) to halt. */
    SampleResult run(const Program &prog);

    /** Emit the "xloops-sample-1" stats document for @p r. */
    void writeJson(JsonWriter &w, const SampleResult &r) const;

  private:
    u64 stepDetailed(const DecodedProgram &dec, u64 budget);

    SysConfig cfg;
    SampleOptions opts;
    MainMemory mem;
    ThreadedExecutor exec;
    std::unique_ptr<GppModel> gpp;
    ThreadedExecutor::Cursor cur;
};

} // namespace xloops

#endif // XLOOPS_SYSTEM_SAMPLING_H
