/**
 * @file
 * Divergence / replay capsules (schema "xloops-capsule-1").
 *
 * When a run dies with a SimError — a lockstep divergence, a watchdog
 * firing, a limit valve — the driver packages everything needed to
 * re-execute it into one self-contained file: the exact program image,
 * the initial memory image (program plus kernel input data), the
 * configuration / mode / fault-seed knobs, the structured error (with
 * the DivergenceInfo payload when there is one), and the nearest
 * checkpoint taken before the failure. `xsim --replay capsule.json`
 * re-executes deterministically, verifies the error reproduces
 * *identically* (same site, loop pc, iteration, register/address),
 * re-verifies it from the embedded checkpoint, and then bisects over
 * checkpoints taken during the replay to hand back the tightest
 * [checkpoint, failure] window around the first divergent iteration.
 */

#ifndef XLOOPS_SYSTEM_CAPSULE_H
#define XLOOPS_SYSTEM_CAPSULE_H

#include <string>

#include "asm/program.h"
#include "mem/memory.h"

namespace xloops {

class SimError;

/** Captured at run time so a capsule can be written if the run dies:
 *  the exact image executed and the initial memory it started from. */
struct CapsuleContext
{
    bool valid = false;        ///< program/initialMem were captured
    Program program;
    MainMemory initialMem;     ///< after program load + kernel setup
    std::string lastCheckpoint;  ///< nearest prior checkpoint (or "")
    u64 lastCheckpointInst = 0;
};

/** The CLI-level knobs replay must reapply to rebuild the run. */
struct CapsuleRunSpec
{
    std::string configName;
    std::string modeName;
    std::string workload;      ///< kernel or file name (label only)
    u64 maxInsts = 500'000'000;
    bool lockstep = false;     ///< replay re-runs with the same checker
    u64 injectSeed = 0;
    double injectRate = 0.0;
    double archCorruptRate = 0.0;
    bool haveWatchdog = false;
    u64 watchdogCycles = 0;
};

/** Write @p error and its run context as a capsule at @p path.
 *  @p flightJson, when non-empty, is an "xloops-flight-1" document
 *  (the service flight recorder's dump) embedded under "flight" so a
 *  daemon-produced capsule carries the fleet context that led up to
 *  the failure. */
void writeCapsule(const std::string &path, const CapsuleRunSpec &spec,
                  const CapsuleContext &ctx, const SimError &error,
                  const std::string &flightJson = "");

/**
 * Replay the capsule at @p path: re-execute, verify the recorded
 * error reproduces identically, re-verify from the embedded
 * checkpoint, bisect. Prints a "replay:" report; returns the process
 * exit code (0 reproduced identically, 2 any mismatch).
 */
int replayCapsule(const std::string &path);

} // namespace xloops

#endif // XLOOPS_SYSTEM_CAPSULE_H
