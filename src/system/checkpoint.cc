/**
 * @file
 * Versioned whole-machine checkpoints (schema "xloops-ckpt-1").
 *
 * A checkpoint is the *complete* deterministic state of a run between
 * two committed instructions: architectural state (registers, every
 * touched memory page), the timing state of the active GPP model and
 * its caches, the LPSU's buffer residency / statistics / fault-
 * injector RNG streams, the adaptive profiling table, graceful-
 * degradation state (fallback PCs, storm cooldowns), the attached
 * per-loop profiler, and the running result counters. Restoring one
 * and running to completion is byte-identical (stats JSON included)
 * to the uninterrupted run — tests/test_checkpoint.cc and the
 * checkpoint-roundtrip cli test enforce exactly that.
 *
 * Numbers that must survive exactly (u64 counters, RNG states, IEEE
 * bit patterns) are stored as decimal lexemes or "0x..." strings; the
 * reader (JsonValue) keeps number lexemes verbatim, so no value ever
 * passes through a double.
 */

#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/log.h"
#include "common/serialize.h"
#include "system/lockstep.h"
#include "system/system.h"

namespace xloops {

namespace {

constexpr const char *ckptSchema = "xloops-ckpt-1";

ExecMode
modeFromName(const std::string &name)
{
    if (name == "T")
        return ExecMode::Traditional;
    if (name == "S")
        return ExecMode::Specialized;
    if (name == "A")
        return ExecMode::Adaptive;
    fatal("checkpoint has an unknown execution mode '" + name + "'");
}

} // namespace

std::string
XloopsSystem::checkpointText(const Program &prog, const RunState &rs,
                             const LockstepChecker *checker) const
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.field("schema", ckptSchema);
    w.field("config", cfg.name);
    w.field("mode", execModeName(rs.mode));
    w.field("program_hash", strf("0x", std::hex, prog.hash()));
    w.field("inst_count", rs.result.gppInsts);
    w.field("pc", static_cast<u64>(rs.pc));

    w.key("regs");
    writeU64Array(w, {rs.regs.regs.begin(), rs.regs.regs.end()});

    w.key("result").beginObject();
    w.field("gpp_insts", rs.result.gppInsts);
    w.field("lane_insts", rs.result.laneInsts);
    w.field("xloops_specialized", rs.result.xloopsSpecialized);
    w.endObject();

    w.key("mem").beginObject();
    mem.saveState(w);
    w.endObject();

    w.key("gpp").beginObject();
    gpp->saveState(w);
    w.endObject();

    if (lpsu) {
        w.key("lpsu").beginObject();
        lpsu->saveState(w);
        w.endObject();
    }

    w.key("apt").beginObject();
    apt.saveState(w);
    w.endObject();

    w.key("fallback_pcs");
    writeU64Array(w, {fallbackPcs.begin(), fallbackPcs.end()});

    w.key("storm_cooldowns").beginArray();
    for (const auto &[pc, sc] : stormCooldowns) {
        w.beginObject();
        w.field("pc", static_cast<u64>(pc));
        w.field("level", static_cast<u64>(sc.level));
        w.field("remaining", sc.remaining);
        w.endObject();
    }
    w.endArray();

    if (profiler) {
        w.key("profiler").beginObject();
        profiler->saveState(w);
        w.endObject();
    }

    if (checker) {
        w.key("lockstep").beginObject();
        checker->saveState(w);
        w.endObject();
    }

    w.endObject();
    os << "\n";
    return os.str();
}

void
XloopsSystem::restoreCheckpoint(const JsonValue &v, const Program &prog,
                                RunState &rs, LockstepChecker *checker)
{
    if (v.at("schema").asString() != ckptSchema)
        fatal(strf("not an ", ckptSchema, " checkpoint"));
    if (v.at("config").asString() != cfg.name) {
        fatal(strf("checkpoint was taken on configuration '",
                   v.at("config").asString(), "', not '", cfg.name, "'"));
    }
    const ExecMode mode = modeFromName(v.at("mode").asString());
    if (mode != rs.mode)
        fatal("checkpoint execution mode does not match the run");
    if (parseU64(v.at("program_hash").asString()) != prog.hash())
        fatal("checkpoint was taken against a different program image");

    const std::vector<u64> regs = readU64Array(v.at("regs"));
    if (regs.size() != numArchRegs)
        fatal("checkpoint register file size mismatch");
    for (unsigned r = 0; r < numArchRegs; r++)
        rs.regs.regs[r] = static_cast<u32>(regs[r]);
    rs.pc = static_cast<Addr>(v.at("pc").asU64());
    rs.halted = false;

    const JsonValue &res = v.at("result");
    rs.result.gppInsts = res.at("gpp_insts").asU64();
    rs.result.laneInsts = res.at("lane_insts").asU64();
    rs.result.xloopsSpecialized = res.at("xloops_specialized").asU64();

    mem.loadState(v.at("mem"));
    gpp->loadState(v.at("gpp"));
    if (lpsu) {
        if (!v.has("lpsu"))
            fatal("checkpoint lacks LPSU state this configuration needs");
        lpsu->loadState(v.at("lpsu"));
    }
    apt.loadState(v.at("apt"));

    fallbackPcs.clear();
    for (const u64 pc : readU64Array(v.at("fallback_pcs")))
        fallbackPcs.insert(static_cast<Addr>(pc));

    stormCooldowns.clear();
    for (const JsonValue &scv : v.at("storm_cooldowns").array()) {
        StormCooldown sc;
        sc.level = static_cast<unsigned>(scv.at("level").asU64());
        sc.remaining = scv.at("remaining").asU64();
        stormCooldowns[static_cast<Addr>(scv.at("pc").asU64())] = sc;
    }

    if (profiler && v.has("profiler"))
        profiler->loadState(v.at("profiler"));

    if (checker) {
        if (v.has("lockstep")) {
            checker->loadState(v.at("lockstep"), rs.regs, mem, rs.pc);
        } else {
            // Checkpoint taken without lockstep: clone the shadow
            // from the restored main state (valid because the shadow
            // equals the main state at every boundary anyway).
            checker->resume(rs.regs, mem, rs.pc);
        }
    }
}

void
XloopsSystem::restoreCheckpointFile(const std::string &path,
                                    const Program &prog, RunState &rs,
                                    LockstepChecker *checker)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open checkpoint " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    restoreCheckpoint(jsonParse(ss.str()), prog, rs, checker);
}

} // namespace xloops
