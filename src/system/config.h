/**
 * @file
 * System configurations: the paper's baseline GPPs (io, ooo/2, ooo/4),
 * the XLOOPS configurations (io+x, ooo/2+x, ooo/4+x), and the Figure 9
 * design-space-exploration variants (+t multithreading, x8 lanes,
 * +r extra memports/LLFUs, +m larger LSQs).
 */

#ifndef XLOOPS_SYSTEM_CONFIG_H
#define XLOOPS_SYSTEM_CONFIG_H

#include <string>
#include <vector>

#include "cpu/gpp.h"
#include "lpsu/lpsu.h"

namespace xloops {

/** A whole-system configuration: GPP, optional LPSU, caches. */
struct SysConfig
{
    std::string name;
    GppConfig gpp;
    bool hasLpsu = false;
    LpsuConfig lpsu;
};

namespace configs {

/** Single-issue in-order GPP (paper "io"). */
SysConfig io();

/** Two-way out-of-order GPP (paper "ooo/2"). */
SysConfig ooo2();

/** Four-way out-of-order GPP (paper "ooo/4"). */
SysConfig ooo4();

/** Attach the default 4-lane LPSU ("+x"). */
SysConfig withLpsu(SysConfig base);

SysConfig ioX();
SysConfig ooo2X();
SysConfig ooo4X();

/** Figure 9 DSE points (all on the ooo/4 host). */
SysConfig ooo4X4t();    ///< 4 lanes + 2-way vertical multithreading
SysConfig ooo4X8();     ///< 8 lanes
SysConfig ooo4X8r();    ///< 8 lanes + 2x memports and LLFUs
SysConfig ooo4X8rm();   ///< 8 lanes + 2x resources + 16+16 LSQs

/** Extension ablation: cross-lane store-load forwarding with
 *  value-based violation filtering (the paper's "more aggressive
 *  implementation", Section II-D). */
SysConfig ioXf();
SysConfig ooo4Xf();

/** Extension: dual-issue in-order lanes (the paper's future-work
 *  "superscalar lane microarchitectures", Section IV-C). */
SysConfig ioX2w();
SysConfig ooo4X2w();

/** Lookup by name ("io", "ooo/2+x", ...). Throws on unknown names. */
SysConfig byName(const std::string &name);

/** The six main-evaluation configurations. */
std::vector<SysConfig> mainGrid();

} // namespace configs

} // namespace xloops

#endif // XLOOPS_SYSTEM_CONFIG_H
