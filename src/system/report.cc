#include "system/report.h"

#include <fstream>

#include "common/json.h"
#include "common/log.h"

namespace xloops {

void
writeStatsJson(std::ostream &out, const std::string &cfgName,
               const std::string &modeName, const std::string &workload,
               const SysResult &result, const LoopProfiler &profiler,
               const Tracer *tracer)
{
    JsonWriter w(out, /*pretty=*/true);
    w.beginObject();
    w.field("schema", "xloops-stats-1");
    w.field("config", cfgName);
    w.field("mode", modeName);
    w.field("workload", workload);
    w.key("result").beginObject();
    w.field("cycles", result.cycles);
    w.field("gpp_insts", result.gppInsts);
    w.field("lane_insts", result.laneInsts);
    w.field("xloops_specialized", result.xloopsSpecialized);
    w.endObject();
    result.stats.writeJson(w);
    profiler.writeJson(w);
    if (tracer) {
        w.key("trace").beginObject();
        w.field("total_emitted", tracer->totalEmitted());
        w.field("dropped", tracer->dropped());
        w.endObject();
    }
    w.endObject();
    out << "\n";
}

void
writeStatsJsonFile(const std::string &path, const std::string &cfgName,
                   const std::string &modeName,
                   const std::string &workload, const SysResult &result,
                   const LoopProfiler &profiler, const Tracer *tracer)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write " + path);
    writeStatsJson(out, cfgName, modeName, workload, result, profiler,
                   tracer);
}

} // namespace xloops
