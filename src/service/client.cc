#include "service/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.h"

namespace xloops {

ServiceClient::ServiceClient(const std::string &socketPath)
{
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(strf("socket: ", std::strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        fd = -1;
        fatal("socket path too long: " + socketPath);
    }
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        fd = -1;
        fatal(strf("cannot connect to xloopsd at ", socketPath, ": ",
                   std::strerror(errno)));
    }
}

ServiceClient::~ServiceClient()
{
    if (fd >= 0)
        ::close(fd);
}

std::string
ServiceClient::request(const std::string &line)
{
    std::string out = line;
    out.push_back('\n');
    size_t off = 0;
    while (off < out.size()) {
        const ssize_t n =
            ::write(fd, out.data() + off, out.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal(strf("xloopsd connection lost: ",
                       std::strerror(errno)));
        }
        off += static_cast<size_t>(n);
    }

    std::string response;
    char c;
    while (true) {
        const ssize_t n = ::read(fd, &c, 1);
        if (n == 0)
            fatal("xloopsd closed the connection mid-response");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal(strf("xloopsd connection lost: ",
                       std::strerror(errno)));
        }
        if (c == '\n')
            return response;
        response.push_back(c);
    }
}

} // namespace xloops
