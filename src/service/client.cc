#include "service/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.h"

namespace xloops {

ServiceClient::ServiceClient(const std::string &socketPath,
                             unsigned retryBudgetMs)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        fatal("socket path too long: " + socketPath);
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    // A daemon restart is a normal event in a durable service — the
    // old socket disappears (ENOENT) or refuses (ECONNREFUSED) for
    // the moment between exec and bind. Retry those two, and only
    // those two, under a small capped-exponential schedule; anything
    // else (permissions, a path that is not a socket) fails at once.
    unsigned delayMs = 25;
    unsigned sleptMs = 0;
    while (true) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal(strf("socket: ", std::strerror(errno)));
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return;
        const int err = errno;
        ::close(fd);
        fd = -1;
        const bool transient = err == ECONNREFUSED || err == ENOENT;
        if (!transient || sleptMs >= retryBudgetMs)
            fatal(strf("cannot connect to xloopsd at ", socketPath,
                       ": ", std::strerror(err),
                       transient ? strf(" (after ", sleptMs,
                                        "ms of retries)")
                                 : ""));
        const unsigned waitMs =
            std::min(delayMs, retryBudgetMs - sleptMs);
        std::this_thread::sleep_for(std::chrono::milliseconds(waitMs));
        sleptMs += waitMs;
        delayMs = std::min(delayMs * 2, 800u);
    }
}

ServiceClient::~ServiceClient()
{
    if (fd >= 0)
        ::close(fd);
}

std::string
ServiceClient::request(const std::string &line)
{
    std::string out = line;
    out.push_back('\n');
    size_t off = 0;
    while (off < out.size()) {
        // MSG_NOSIGNAL: a daemon killed mid-request must surface as
        // EPIPE (a catchable FatalError), not a process-fatal SIGPIPE
        // in whatever client happened to be writing.
        const ssize_t n = ::send(fd, out.data() + off,
                                 out.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal(strf("xloopsd connection lost: ",
                       std::strerror(errno)));
        }
        off += static_cast<size_t>(n);
    }

    std::string response;
    char c;
    while (true) {
        const ssize_t n = ::read(fd, &c, 1);
        if (n == 0)
            fatal("xloopsd closed the connection mid-response");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal(strf("xloopsd connection lost: ",
                       std::strerror(errno)));
        }
        if (c == '\n')
            return response;
        response.push_back(c);
    }
}

} // namespace xloops
