/**
 * @file
 * The job supervisor: admission control, worker dispatch, per-job
 * quotas, retry with backoff, crash isolation, and the result cache —
 * everything between "a JobSpec arrived" and "a terminal JobOutcome
 * exists", independent of any socket (the daemon wires a server in
 * front of it; tests drive it directly).
 *
 * Lifecycle of a job:
 *
 *   submit() validates the spec, allocates an id, and offers it to
 *   the bounded queue — a full queue sheds the job immediately
 *   (terminal Shed outcome, never queued). A worker picks it up,
 *   checks the content-addressed result cache (hit = Done without
 *   simulating, byte-identical to a cold run), and otherwise runs the
 *   kernel under the job's instruction valve, wall-clock deadline
 *   (enforced by a watchdog thread through the run's cooperative stop
 *   flag), and fault knobs. Retryable SimErrors re-run after
 *   exponential backoff with jitter under a re-derived fault seed;
 *   fatal or exhausted failures are packaged as replay capsules in
 *   the artifact directory. drain() closes admission, cancels the
 *   backlog, and finishes the jobs already running.
 *
 * Thread safety: every public method may be called from any thread.
 */

#ifndef XLOOPS_SERVICE_SUPERVISOR_H
#define XLOOPS_SERVICE_SUPERVISOR_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.h"
#include "service/job.h"
#include "service/queue.h"
#include "service/retry.h"

namespace xloops {

/** Server-wide supervisor knobs (see tools/xloopsd.cc flags). */
struct SupervisorConfig
{
    unsigned workers = 0;      ///< 0 = hardware concurrency
    size_t queueDepth = 64;    ///< admission bound (beyond = shed)
    RetryPolicy retry;         ///< server-wide retry/backoff bounds
    u64 defaultDeadlineMs = 30'000;  ///< jobs may set their own
    std::string artifactDir = ".";   ///< capsules land here
    size_t cacheEntries = 4096;

    /** Start with workers gated (jobs queue but do not run) until
     *  resume() — deterministic queue-depth and shed tests. */
    bool startPaused = false;
};

/** Monotonic counters a `stats` request reports. */
struct SupervisorStats
{
    u64 submitted = 0;   ///< accepted into the queue
    u64 done = 0;        ///< terminal Done (including cache hits)
    u64 failed = 0;      ///< terminal Failed
    u64 shed = 0;        ///< refused by admission control
    u64 cancelled = 0;   ///< terminal Cancelled
    u64 retries = 0;     ///< re-run attempts beyond the first
    u64 cacheHits = 0;
    u64 cacheMisses = 0;
    u64 queued = 0;      ///< current queue depth (gauge)
    u64 running = 0;     ///< jobs on workers right now (gauge)
};

/** What submit() decided. */
struct Admission
{
    bool accepted = false;
    u64 jobId = 0;          ///< allocated even for shed jobs
    std::string reason;     ///< why not, when !accepted
};

class Supervisor
{
  public:
    explicit Supervisor(const SupervisorConfig &config = {});

    /** drain()s if the caller has not. */
    ~Supervisor();

    /**
     * Validate and enqueue @p spec. Invalid specs and overload both
     * come back !accepted (reason distinguishes them); a shed job
     * still has an id with a terminal Shed outcome.
     */
    Admission submit(const JobSpec &spec);

    /** Block until @p jobId is terminal; returns its outcome.
     *  Throws FatalError for unknown ids. */
    JobOutcome wait(u64 jobId);

    /** Snapshot of @p jobId right now (may be non-terminal).
     *  Throws FatalError for unknown ids. */
    JobOutcome status(u64 jobId) const;

    /**
     * Cancel @p jobId: a queued job becomes terminal Cancelled
     * without running; a running job gets its stop flag raised
     * (lands as a Cancelled SimError at the next commit boundary).
     * False when already terminal or unknown.
     */
    bool cancel(u64 jobId);

    /** The capsule document of a failed job ("" when it has none). */
    std::string capsuleText(u64 jobId) const;

    /** Release workers gated by SupervisorConfig::startPaused. */
    void resume();

    /**
     * Graceful shutdown: refuse new submissions, cancel everything
     * still queued, let running jobs finish (or honor their stop
     * flags), and join all threads. Idempotent.
     */
    void drain();

    bool draining() const { return drainFlag.load(); }

    SupervisorStats stats() const;

    ResultCache &cache() { return resultCache; }

  private:
    struct JobRecord
    {
        JobSpec spec;
        JobOutcome outcome;
        std::atomic<u32> stop{0};  ///< a StopCause, polled by the run
        std::string capsule;       ///< capsule document (in-memory)

        /** Wall-clock deadline of the current attempt (watchdog
         *  scans these; guarded by the supervisor mutex). */
        bool deadlineArmed = false;
        std::chrono::steady_clock::time_point deadlineAt;
    };

    void workerLoop();
    void watchdogLoop();
    void runJob(JobRecord &rec);

    /** Finalize @p rec with a terminal status; wakes waiters and
     *  bumps the matching counter. */
    void finish(JobRecord &rec, JobStatus status);

    JobRecord &recordFor(u64 jobId) const;

    SupervisorConfig cfg;
    ResultCache resultCache;
    BoundedJobQueue queue;

    mutable std::mutex m;
    std::condition_variable terminalCv;  ///< a job turned terminal
    std::condition_variable gateCv;      ///< pause gate + backoff waits
    std::map<u64, std::unique_ptr<JobRecord>> jobs;
    std::atomic<u64> nextJobId{1};
    bool paused = false;
    std::atomic<bool> drainFlag{false};
    bool joined = false;

    SupervisorStats counters;  ///< guarded by m (gauges computed live)

    std::vector<std::thread> workers;
    std::thread watchdog;
};

} // namespace xloops

#endif // XLOOPS_SERVICE_SUPERVISOR_H
