/**
 * @file
 * The job supervisor: admission control, worker dispatch, per-job
 * quotas, retry with backoff, crash isolation, and the result cache —
 * everything between "a JobSpec arrived" and "a terminal JobOutcome
 * exists", independent of any socket (the daemon wires a server in
 * front of it; tests drive it directly).
 *
 * Lifecycle of a job:
 *
 *   submit() validates the spec, allocates an id, and offers it to
 *   the bounded queue — a full queue sheds the job immediately
 *   (terminal Shed outcome, never queued). A worker picks it up,
 *   checks the content-addressed result cache (hit = Done without
 *   simulating, byte-identical to a cold run), and otherwise runs the
 *   kernel under the job's instruction valve, wall-clock deadline
 *   (enforced by a watchdog thread through the run's cooperative stop
 *   flag), and fault knobs. Retryable SimErrors re-run after
 *   exponential backoff with jitter under a re-derived fault seed;
 *   fatal or exhausted failures are packaged as replay capsules in
 *   the artifact directory. drain() closes admission, cancels the
 *   backlog, and finishes the jobs already running.
 *
 * Thread safety: every public method may be called from any thread.
 */

#ifndef XLOOPS_SERVICE_SUPERVISOR_H
#define XLOOPS_SERVICE_SUPERVISOR_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flight.h"
#include "common/trace.h"
#include "service/cache.h"
#include "service/job.h"
#include "service/journal.h"
#include "service/queue.h"
#include "service/retry.h"

namespace xloops {

/** Server-wide supervisor knobs (see tools/xloopsd.cc flags). */
struct SupervisorConfig
{
    unsigned workers = 0;      ///< 0 = hardware concurrency
    size_t queueDepth = 64;    ///< admission bound (beyond = shed)
    RetryPolicy retry;         ///< server-wide retry/backoff bounds
    u64 defaultDeadlineMs = 30'000;  ///< jobs may set their own
    std::string artifactDir = ".";   ///< capsules land here
    size_t cacheEntries = 4096;

    /** Start with workers gated (jobs queue but do not run) until
     *  resume() — deterministic queue-depth and shed tests. */
    bool startPaused = false;

    /** Write-ahead job journal ("xloops-journal-1"); empty disables
     *  durability (jobs die with the process, the pre-journal
     *  behavior). See docs/SERVICE.md §7. */
    std::string journalPath;

    /** Replay the journal at startup and re-enqueue acknowledged
     *  jobs the previous generation never finished. Only meaningful
     *  with journalPath set; xloopsd --no-recover clears it. */
    bool recover = true;

    /** Periodically checkpoint attempt-0 runs every N committed GPP
     *  instructions so recovery can resume a long job mid-flight
     *  instead of restarting it (0 disables; needs journalPath). */
    u64 checkpointEveryInsts = 0;

    /** Where job checkpoints live; empty = artifactDir. */
    std::string checkpointDir;
};

/** Monotonic counters a `stats` request reports. */
struct SupervisorStats
{
    u64 submitted = 0;   ///< accepted into the queue
    u64 done = 0;        ///< terminal Done (including cache hits)
    u64 failed = 0;      ///< terminal Failed
    u64 shed = 0;        ///< refused by admission control
    u64 cancelled = 0;   ///< terminal Cancelled
    u64 retries = 0;     ///< re-run attempts beyond the first
    u64 cacheHits = 0;
    u64 cacheMisses = 0;
    u64 queued = 0;      ///< current queue depth (gauge)
    u64 running = 0;     ///< jobs on workers right now (gauge)
    u64 recovered = 0;   ///< re-enqueued from the journal at startup
    u64 resumed = 0;     ///< recovered jobs restored from a checkpoint
};

/** What startup recovery found in the journal (xloopsd logs this). */
struct RecoveryReport
{
    u64 recovered = 0;   ///< jobs re-enqueued this generation
    u64 withCheckpoint = 0;  ///< of those, how many carry a checkpoint
    u64 previouslyFinished = 0;  ///< terminal in the old generation
    bool tornTail = false;   ///< the old journal ended mid-record
};

/** What submit() decided. */
struct Admission
{
    bool accepted = false;
    u64 jobId = 0;          ///< allocated even for shed jobs
    std::string reason;     ///< why not, when !accepted
};

/** One-shot health probe ("health" protocol verb, `xloopsc health`). */
struct HealthInfo
{
    u64 uptimeUs = 0;
    u64 queued = 0;       ///< current queue depth
    u64 inFlight = 0;     ///< admitted but not yet terminal
    u64 running = 0;      ///< jobs on workers right now
    u64 cacheEntries = 0;

    /** Shedding (queue at capacity) or draining: alive but refusing
     *  or about to refuse work — `xloopsc health` exits 5. */
    bool degraded = false;
    bool draining = false;
};

class Supervisor
{
  public:
    explicit Supervisor(const SupervisorConfig &config = {});

    /** drain()s if the caller has not. */
    ~Supervisor();

    /**
     * Validate and enqueue @p spec. Invalid specs and overload both
     * come back !accepted (reason distinguishes them); a shed job
     * still has an id with a terminal Shed outcome.
     */
    Admission submit(const JobSpec &spec);

    /** Block until @p jobId is terminal; returns its outcome.
     *  Throws FatalError for unknown ids. */
    JobOutcome wait(u64 jobId);

    /** Snapshot of @p jobId right now (may be non-terminal).
     *  Throws FatalError for unknown ids. */
    JobOutcome status(u64 jobId) const;

    /**
     * Cancel @p jobId: a queued job becomes terminal Cancelled
     * without running; a running job gets its stop flag raised
     * (lands as a Cancelled SimError at the next commit boundary).
     * False when already terminal or unknown.
     */
    bool cancel(u64 jobId);

    /** The capsule document of a failed job ("" when it has none). */
    std::string capsuleText(u64 jobId) const;

    /** Release workers gated by SupervisorConfig::startPaused. */
    void resume();

    /**
     * Graceful shutdown: refuse new submissions, cancel everything
     * still queued, let running jobs finish (or honor their stop
     * flags), and join all threads. Idempotent.
     */
    void drain();

    bool draining() const { return drainFlag.load(); }

    SupervisorStats stats() const;

    /** Snapshot for the "health" verb (degraded = shedding/draining). */
    HealthInfo health() const;

    /**
     * Publish the supervisor's mutex-guarded job accounting (plus the
     * cache and queue views) into the global metrics registry as one
     * consistent family, so `jobs_admitted == completed + failed +
     * shed + cancelled + in_flight` holds *exactly* at every scrape.
     * Call immediately before reading the registry (the metrics verb,
     * the metrics-log tick, and loadgen's final snapshot all do).
     */
    void publishMetrics() const;

    ResultCache &cache() { return resultCache; }

    /** What startup recovery replayed from the journal (all zeros
     *  when journaling is off or this was a cold start). */
    const RecoveryReport &recovery() const { return recoveryInfo; }

    /** The service flight recorder (dumped into capsules/on drain). */
    FlightRecorder &flight() { return flightRec; }

    /** The per-job span ring: Svc-track slices in monotonicUs() time,
     *  renderable next to simulator traces via writeChromeJson(). */
    Tracer &spanTracer() { return spans; }

  private:
    struct JobRecord
    {
        JobSpec spec;
        JobOutcome outcome;
        std::atomic<u32> stop{0};  ///< a StopCause, polled by the run
        std::string capsule;       ///< capsule document (in-memory)
        u64 admittedUs = 0;        ///< monotonicUs() at admission

        /** Crash recovery: the id this job had in the previous daemon
         *  generation (0 = fresh submission) and the checkpoint text
         *  it left behind, consumed by attempt 0 of the re-run. */
        u64 recoveredFrom = 0;
        std::string resumeCkpt;

        /** Wall-clock deadline of the current attempt (watchdog
         *  scans these; guarded by the supervisor mutex). */
        bool deadlineArmed = false;
        std::chrono::steady_clock::time_point deadlineAt;
    };

    void workerLoop();
    void watchdogLoop();
    void runJob(JobRecord &rec);

    /** Replay the journal, re-enqueue the previous generation's
     *  unfinished jobs, and rotate in this generation's journal.
     *  Runs in the constructor before any worker exists. */
    void recoverFromJournal();

    /** The periodic-checkpoint file of @p jobId this generation. */
    std::string ckptPathFor(u64 jobId) const;

    /** Emit one Svc-track span event (the Tracer ring is not itself
     *  thread-safe; job lifecycle events are rare enough that a mutex
     *  costs nothing). Gated on metricsEnabled(). */
    void emitSpan(TraceKind kind, unsigned attempt, u64 jobId, i64 a1);

    /** Finalize @p rec with a terminal status; wakes waiters and
     *  bumps the matching counter. */
    void finish(JobRecord &rec, JobStatus status);

    JobRecord &recordFor(u64 jobId) const;

    SupervisorConfig cfg;
    ResultCache resultCache;
    BoundedJobQueue queue;
    std::unique_ptr<Journal> journal;  ///< null when journaling is off
    RecoveryReport recoveryInfo;

    mutable std::mutex m;
    std::condition_variable terminalCv;  ///< a job turned terminal
    std::condition_variable gateCv;      ///< pause gate + backoff waits
    std::map<u64, std::unique_ptr<JobRecord>> jobs;
    std::atomic<u64> nextJobId{1};
    bool paused = false;
    std::atomic<bool> drainFlag{false};
    bool joined = false;

    SupervisorStats counters;  ///< guarded by m (gauges computed live)

    FlightRecorder flightRec;
    mutable std::mutex spanMu;
    Tracer spans{size_t{1} << 16};
    u64 startUs = 0;           ///< monotonicUs() at construction

    std::vector<std::thread> workers;
    std::thread watchdog;
};

} // namespace xloops

#endif // XLOOPS_SERVICE_SUPERVISOR_H
