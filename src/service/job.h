/**
 * @file
 * The service job model: what a client asks the daemon to simulate
 * (JobSpec), what it gets back (JobOutcome), and the JSON codecs both
 * sides of the "xloops-job-1" / "xloops-result-1" wire protocol share
 * (see docs/SERVICE.md and service/protocol.h).
 *
 * A JobSpec is deliberately the same knob set as one `xsim -k` run —
 * kernel, config, mode, valves, fault seeds, lockstep — so anything
 * reproducible from the CLI is submittable as a job and vice versa:
 * a failed job's capsule replays with plain `xsim --replay`.
 */

#ifndef XLOOPS_SERVICE_JOB_H
#define XLOOPS_SERVICE_JOB_H

#include <string>

#include "common/types.h"

namespace xloops {

class JsonWriter;
class JsonValue;

/** One simulation job: a kernel on a configuration under a mode,
 *  wrapped in the service's quota envelope. */
struct JobSpec
{
    std::string kernel;          ///< registered kernel name
    std::string config = "io+x"; ///< configuration name (configs::byName)
    std::string mode = "S";      ///< T, S, or A
    bool gpBinary = false;       ///< run the serialized GP-ISA binary

    /** Per-job instruction valve (quota; trips as InstLimit). */
    u64 maxInsts = 500'000'000;

    /** Per-job wall-clock watchdog in ms; 0 = the server default. */
    u64 deadlineMs = 0;

    /** Fault-injection knobs (same semantics as xsim). */
    u64 injectSeed = 0;
    double injectRate = 0.0;
    double injectArchRate = 0.0;

    /** LPSU no-commit watchdog override (cycles; only when have set). */
    bool haveWatchdog = false;
    u64 watchdogCycles = 0;

    /** Differential lockstep verification (divergences capsule). */
    bool lockstep = false;

    /** Retry budget override; negative = the server default. */
    int maxRetries = -1;

    /**
     * Validate names and knob combinations without running anything;
     * returns false with a reason for submissions the daemon must
     * reject up front (unknown kernel/config, bad mode, arch
     * corruption without a seed, GP binary outside mode T).
     */
    bool validate(std::string &why) const;

    /** Emit the "job" object fields (inverse of jobSpecFromJson). */
    void toJson(JsonWriter &w) const;
};

/** Parse a "job" object; throws FatalError on malformed documents. */
JobSpec jobSpecFromJson(const JsonValue &v);

/** Terminal and in-flight states of a submitted job. */
enum class JobStatus
{
    Queued,     ///< admitted, waiting for a worker
    Running,    ///< on a worker (includes retry backoff waits)
    Done,       ///< validated result available
    Failed,     ///< checker failure or fatal/exhausted SimError
    Shed,       ///< rejected by admission control (never queued)
    Cancelled,  ///< cancelled while queued (client request or drain)
};

const char *jobStatusName(JobStatus status);

/** Everything the daemon reports back about one job. */
struct JobOutcome
{
    u64 jobId = 0;
    JobStatus status = JobStatus::Queued;
    unsigned attempts = 0;      ///< run attempts actually made
    bool cached = false;        ///< served from the result cache
    std::string error;          ///< failure message (empty on success)
    std::string errorKind;      ///< simErrorKindName, or "checker"
    std::string capsulePath;    ///< artifact path when the job capsuled
    Cycle cycles = 0;
    u64 gppInsts = 0;
    std::string statsJson;      ///< canonical "xloops-stats-1" document

    /** Span timings: where this job's wall-clock latency went (also
     *  emitted as SVC trace slices — docs/OBSERVABILITY.md §6.2).
     *  simUs sums every attempt, so (simUs, attempts, cached) answer
     *  "why was this job slow" from the reply alone. */
    u64 queueWaitUs = 0;        ///< admission -> worker pickup
    u64 cacheLookupUs = 0;      ///< result-cache probe
    u64 simUs = 0;              ///< total time simulating, all attempts

    bool
    terminal() const
    {
        return status == JobStatus::Done || status == JobStatus::Failed ||
               status == JobStatus::Shed ||
               status == JobStatus::Cancelled;
    }
};

} // namespace xloops

#endif // XLOOPS_SERVICE_JOB_H
