/**
 * @file
 * Write-ahead job journal for the simulation service — the daemon's
 * crash-durability backbone.
 *
 * Every acknowledged job's lifecycle is recorded as an append-only
 * sequence of CRC32-framed records:
 *
 *   accepted -> started -> attempt/backoff* -> completed|failed|
 *                                              cancelled
 *   accepted -> shed                 (admission control refused it)
 *
 * The journal is fsync'd at the two points that define the durability
 * contract: `accepted` (before the client can observe the admission,
 * so an acknowledged job is never forgotten) and every terminal event
 * (so a finished job is never re-run on recovery). Intermediate
 * records (`started`, `attempt`, `backoff`) ride along unsynced —
 * losing them only costs recovery a little precision, never a job.
 *
 * On-disk format ("xloops-journal-1"): one record per line,
 *
 *   xj1 <crc32-hex8> <compact-json>\n
 *
 * where the CRC covers exactly the JSON payload bytes. The first
 * record is an `open` header naming the schema. A process killed
 * mid-append leaves at most one torn final line; replayJournal()
 * truncates parsing at the first unparseable or CRC-failing record
 * (standard WAL torn-tail semantics) and reports how many bytes it
 * ignored. tools/check_journal.py validates the same format offline.
 *
 * Recovery is a pure function of the replayed records
 * (recoverPending), so replaying twice yields the same pending set —
 * the idempotence tests/test_journal.cc pins down.
 */

#ifndef XLOOPS_SERVICE_JOURNAL_H
#define XLOOPS_SERVICE_JOURNAL_H

#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "service/job.h"

namespace xloops {

/** What a journal record says happened. */
enum class JournalEvent : u8 {
    Open,       ///< journal header (schema, generation)
    Accepted,   ///< job validated and admitted (spec embedded; fsync)
    Started,    ///< a worker picked the job up
    Attempt,    ///< run attempt N began
    Backoff,    ///< retryable failure; backoff wait before re-run
    Completed,  ///< terminal: done (fsync)
    Failed,     ///< terminal: failed (fsync)
    Shed,       ///< terminal: refused by admission control (fsync)
    Cancelled,  ///< terminal: cancelled (fsync)
    Recovered,  ///< this accepted record was carried over by recovery
};

const char *journalEventName(JournalEvent ev);

/** One replayed record. */
struct JournalRecord
{
    u64 seq = 0;        ///< strictly increasing per journal
    u64 atUs = 0;       ///< monotonicUs() at append
    JournalEvent ev = JournalEvent::Open;
    u64 jobId = 0;      ///< 0 for the header
    u64 attempt = 0;    ///< attempt number (Attempt/Backoff)
    std::string detail; ///< small context: error kind, backoff ms, ...
    std::string specJson;  ///< compact JobSpec document (Accepted)
};

/**
 * Append-only journal writer. Thread-safe: append() serializes one
 * record under a mutex, writes the framed line with a single write(),
 * and fsyncs when @p sync is set.
 */
class Journal
{
  public:
    /**
     * Open @p path for appending and write the `open` header record
     * (fsync'd). The file is created if missing; an existing file is
     * appended to, so the caller replays + rotates first (see
     * Supervisor recovery). Throws FatalError on I/O errors.
     */
    explicit Journal(const std::string &path);

    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Append one record; @p spec is embedded for Accepted records.
     *  @p sync forces fsync (accept + terminal events). I/O failures
     *  are reported via warn() once, never thrown — a full disk must
     *  degrade durability, not kill the daemon. */
    void append(JournalEvent ev, u64 jobId, const std::string &detail = "",
                u64 attempt = 0, const JobSpec *spec = nullptr,
                bool sync = false);

    const std::string &path() const { return filePath; }
    u64 recordsWritten() const;
    u64 fsyncs() const;

  private:
    mutable std::mutex m;
    std::string filePath;
    int fd = -1;
    u64 seq = 0;
    u64 syncCount = 0;
    bool writeFailed = false;  ///< warn once, then stay quiet
};

/** What replayJournal() found on disk. */
struct JournalReplay
{
    std::vector<JournalRecord> records;  ///< every valid record, in order

    /** True when trailing bytes were ignored: a torn final line from
     *  a crash mid-append, or a CRC-failing record (parsing stops at
     *  the first bad record — later lines are unreachable, exactly
     *  like a WAL whose tail was lost). */
    bool tornTail = false;
    u64 tornBytes = 0;  ///< how many bytes were ignored
};

/** Parse @p path. A missing file is a cold start (empty replay, not
 *  an error); a malformed tail is truncated, never fatal. */
JournalReplay replayJournal(const std::string &path);

/** One journaled job recovery must re-run. */
struct RecoveredJob
{
    JobSpec spec;
    u64 oldJobId = 0;      ///< id in the previous daemon generation
    u64 attempts = 0;      ///< attempts the dead daemon had made
    bool started = false;  ///< a worker had picked it up
};

/** Replay digest: the pending set plus how the finished jobs ended. */
struct JournalRecovery
{
    std::vector<RecoveredJob> pending;  ///< accepted, never terminal
    u64 completed = 0;
    u64 failed = 0;
    u64 cancelled = 0;
    u64 shed = 0;
};

/** Derive the recovery state. Pure: calling it twice on the same
 *  replay yields identical results (replay idempotence). */
JournalRecovery recoverPending(const JournalReplay &replay);

} // namespace xloops

#endif // XLOOPS_SERVICE_JOURNAL_H
