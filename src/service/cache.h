/**
 * @file
 * Content-addressed result cache for the simulation service.
 *
 * A cell simulated once is never simulated again: results are keyed
 * by everything that can change the canonical "xloops-stats-1"
 * document — the program-image hash (the assembled binary, so edits
 * to a kernel or the assembler naturally miss), the configuration and
 * mode, the valves, and the fault seed/rates (bit-exact via their
 * IEEE-754 patterns). Because the simulator is deterministic, a hit
 * is *byte-identical* to what a cold run would have produced — the
 * cache stores the exact serialized document and serves it verbatim
 * (the service soak in CI diffs hit against cold to enforce this).
 *
 * Only first-attempt results are cached: a retry re-derives its fault
 * seed (see service/supervisor.h), so its stats describe a different
 * schedule than the key's.
 *
 * The index persists across daemon restarts as an "xloops-cache-1"
 * JSON document (saved on graceful drain, loaded at startup).
 */

#ifndef XLOOPS_SERVICE_CACHE_H
#define XLOOPS_SERVICE_CACHE_H

#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "common/types.h"

namespace xloops {

struct JobSpec;

/** The cache key of a (program image, config, seed) cell. */
u64 resultCacheKey(u64 programHash, const JobSpec &spec);

/** Thread-safe bounded result cache with FIFO eviction. */
class ResultCache
{
  public:
    explicit ResultCache(size_t max_entries = 4096);

    /** True (and fills @p resultJson verbatim) on a hit. */
    bool lookup(u64 key, std::string &resultJson);

    /** Insert/overwrite; evicts the oldest entry when full. */
    void insert(u64 key, const std::string &resultJson);

    u64 hits() const;
    u64 misses() const;
    u64 evictions() const;
    size_t size() const;

    /** Total bytes of cached result text currently held. */
    u64 bytes() const;

    /** Persist the index ("xloops-cache-1"); throws on I/O errors. */
    void saveIndex(const std::string &path) const;

    /** Load a saved index; returns the number of entries restored
     *  (0 when the file does not exist — a cold start, not an
     *  error). Throws FatalError on malformed documents. */
    size_t loadIndex(const std::string &path);

  private:
    void evictIfNeeded();  // caller holds m

    mutable std::mutex m;
    size_t maxEntries;
    std::map<u64, std::string> entries;
    std::deque<u64> insertionOrder;
    u64 hitCount = 0;
    u64 missCount = 0;
    u64 evictCount = 0;
    u64 byteCount = 0;
};

} // namespace xloops

#endif // XLOOPS_SERVICE_CACHE_H
