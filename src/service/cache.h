/**
 * @file
 * Content-addressed result cache for the simulation service.
 *
 * A cell simulated once is never simulated again: results are keyed
 * by everything that can change the canonical "xloops-stats-1"
 * document — the program-image hash (the assembled binary, so edits
 * to a kernel or the assembler naturally miss), the configuration and
 * mode, the valves, and the fault seed/rates (bit-exact via their
 * IEEE-754 patterns). Because the simulator is deterministic, a hit
 * is *byte-identical* to what a cold run would have produced — the
 * cache stores the exact serialized document and serves it verbatim
 * (the service soak in CI diffs hit against cold to enforce this).
 *
 * Only first-attempt results are cached: a retry re-derives its fault
 * seed (see service/supervisor.h), so its stats describe a different
 * schedule than the key's.
 *
 * Integrity: every entry carries the CRC-32 of its text, computed at
 * insert and re-verified on each lookup and on index load. A failed
 * check can therefore never serve a wrong answer — the entry is
 * quarantined (written to the quarantine directory for forensics),
 * dropped, counted, reported through the corruption hook, and the
 * lookup degrades to a miss so the supervisor transparently
 * re-simulates.
 *
 * The index persists across daemon restarts as an "xloops-cache-1"
 * JSON document (saved on graceful drain, loaded at startup) via
 * atomicWriteFile, so a crash mid-save leaves the previous complete
 * index, never a torn file. Loading tolerates damage instead of
 * refusing to start: an unparseable index is quarantined wholesale
 * and treated as a cold start.
 */

#ifndef XLOOPS_SERVICE_CACHE_H
#define XLOOPS_SERVICE_CACHE_H

#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/types.h"

namespace xloops {

struct JobSpec;

/** The cache key of a (program image, config, seed) cell. */
u64 resultCacheKey(u64 programHash, const JobSpec &spec);

/** Thread-safe bounded result cache with FIFO eviction. */
class ResultCache
{
  public:
    explicit ResultCache(size_t max_entries = 4096);

    /** True (and fills @p resultJson verbatim) on a hit. An entry
     *  whose checksum fails is quarantined and reported as a miss. */
    bool lookup(u64 key, std::string &resultJson);

    /** Insert/overwrite; evicts the oldest entry when full. */
    void insert(u64 key, const std::string &resultJson);

    u64 hits() const;
    u64 misses() const;
    u64 evictions() const;
    size_t size() const;

    /** Total bytes of cached result text currently held. */
    u64 bytes() const;

    /** Entries dropped for failing their content checksum (lookup or
     *  index load). */
    u64 corruptions() const;

    /** Where condemned entries/indexes are preserved for forensics;
     *  empty (the default) skips the file write but still drops the
     *  entry. The directory must already exist. */
    void setQuarantineDir(const std::string &dir);

    /** Invoked (outside the cache lock) whenever an entry fails its
     *  checksum, with the key and a short reason — the supervisor
     *  hangs its flight-recorder event and metric off this. */
    void setCorruptionHook(std::function<void(u64, const std::string &)> fn);

    /** Persist the index ("xloops-cache-1") crash-consistently
     *  (atomic tmp + rename + fsync); throws on I/O errors. */
    void saveIndex(const std::string &path) const;

    /** Load a saved index; returns the number of entries restored
     *  (0 when the file does not exist — a cold start, not an
     *  error). Damage is tolerated, never fatal: an unparseable
     *  document is quarantined wholesale, a checksum-failing entry
     *  individually, and loading continues. */
    size_t loadIndex(const std::string &path);

  private:
    struct Entry
    {
        std::string text;
        u32 crc = 0;
    };

    void evictIfNeeded();  // caller holds m

    /** Preserve @p text under the quarantine dir (caller holds m). */
    void quarantine(const std::string &name, const std::string &text);

    mutable std::mutex m;
    size_t maxEntries;
    std::map<u64, Entry> entries;
    std::deque<u64> insertionOrder;
    std::string quarantineDir;
    std::function<void(u64, const std::string &)> corruptionHook;
    u64 hitCount = 0;
    u64 missCount = 0;
    u64 evictCount = 0;
    u64 byteCount = 0;
    u64 corruptCount = 0;
};

} // namespace xloops

#endif // XLOOPS_SERVICE_CACHE_H
