#include "service/server.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.h"
#include "service/protocol.h"

namespace xloops {

namespace {

/** Read up to the next '\n' (exclusive); false on EOF/error. */
bool
readLine(int fd, std::string &line)
{
    line.clear();
    char c;
    while (true) {
        const ssize_t n = ::read(fd, &c, 1);
        if (n == 0)
            return !line.empty();
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (c == '\n')
            return true;
        line.push_back(c);
        if (line.size() > (64u << 20))
            return false;  // absurd line: drop the connection
    }
}

bool
writeAll(int fd, const std::string &text)
{
    size_t off = 0;
    while (off < text.size()) {
        const ssize_t n =
            ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** One request line -> one response line. */
std::string
handleRequest(Supervisor &sup, const std::string &line,
              std::atomic<bool> &drainRequested)
{
    Request req;
    try {
        req = parseRequest(line);
    } catch (const FatalError &err) {
        return encodeError(err.what());
    }

    try {
        if (req.op == "ping")
            return encodeOk();
        if (req.op == "stats")
            return encodeStats(sup.stats());
        if (req.op == "drain") {
            // The accept loop owns the actual drain (it must also
            // stop accepting and persist the cache); just signal it.
            drainRequested.store(true);
            return encodeOk();
        }
        if (req.op == "status")
            return encodeOutcome(sup.status(req.jobId));
        if (req.op == "capsule") {
            const std::string text = sup.capsuleText(req.jobId);
            if (text.empty())
                return encodeError(
                    strf("job ", req.jobId, " has no capsule"));
            return encodeCapsule(req.jobId, text);
        }

        // submit: synchronous — the response is the terminal outcome.
        const Admission adm = sup.submit(req.job);
        if (!adm.accepted) {
            if (adm.reason == "overloaded")
                return encodeShed(adm.jobId);
            return encodeError(adm.reason);
        }
        return encodeOutcome(sup.wait(adm.jobId));
    } catch (const FatalError &err) {
        return encodeError(err.what());
    }
}

} // namespace

int
runServer(const ServerConfig &cfg, const std::atomic<u32> &shutdownFlag)
{
    Supervisor sup(cfg.supervisor);

    if (!cfg.cacheIndexPath.empty()) {
        const size_t restored =
            sup.cache().loadIndex(cfg.cacheIndexPath);
        if (restored)
            std::fprintf(stderr,
                         "xloopsd: restored %zu cached results\n",
                         restored);
    }

    const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        fatal(strf("socket: ", std::strerror(errno)));

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg.socketPath.size() >= sizeof(addr.sun_path)) {
        ::close(listenFd);
        fatal("socket path too long: " + cfg.socketPath);
    }
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(cfg.socketPath.c_str());  // stale socket from a crash
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        ::close(listenFd);
        fatal(strf("bind ", cfg.socketPath, ": ",
                   std::strerror(errno)));
    }
    if (::listen(listenFd, 64) < 0) {
        ::close(listenFd);
        fatal(strf("listen: ", std::strerror(errno)));
    }
    std::fprintf(stderr, "xloopsd: listening on %s\n",
                 cfg.socketPath.c_str());

    std::atomic<bool> drainRequested{false};
    std::vector<std::thread> connections;
    std::vector<int> connFds;
    std::mutex connMutex;

    // Accept with a poll timeout so shutdown requests (signal or
    // protocol "drain") are noticed within ~200ms even when idle.
    while (shutdownFlag.load() == 0 && !drainRequested.load()) {
        pollfd pfd{listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0 && errno != EINTR)
            break;
        if (ready <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int connFd = ::accept(listenFd, nullptr, nullptr);
        if (connFd < 0)
            continue;
        std::lock_guard<std::mutex> lock(connMutex);
        connFds.push_back(connFd);
        connections.emplace_back([connFd, &sup, &drainRequested,
                                  &shutdownFlag] {
            std::string line;
            while (readLine(connFd, line)) {
                if (line.empty())
                    continue;
                const std::string response =
                    handleRequest(sup, line, drainRequested);
                if (!writeAll(connFd, response + "\n"))
                    break;
                if (drainRequested.load() || shutdownFlag.load())
                    break;
            }
            // The fd is shut down (not closed) here so the main
            // thread can still safely shut it down during drain
            // without an fd-reuse race; it closes everything after
            // the join.
            ::shutdown(connFd, SHUT_RDWR);
        });
    }

    // Graceful drain: no new connections, no new jobs; jobs already
    // running finish (or honor their stop flags), their clients get
    // real responses, and the cache survives to the next daemon.
    std::fprintf(stderr, "xloopsd: draining\n");
    ::close(listenFd);
    sup.drain();  // in-flight submits resolve; waiters respond
    {
        std::lock_guard<std::mutex> lock(connMutex);
        // Unblock connections idling in read() with no request.
        for (const int fd : connFds)
            ::shutdown(fd, SHUT_RDWR);
        for (std::thread &t : connections)
            t.join();
        for (const int fd : connFds)
            ::close(fd);
    }
    if (!cfg.cacheIndexPath.empty()) {
        try {
            sup.cache().saveIndex(cfg.cacheIndexPath);
            std::fprintf(stderr, "xloopsd: cache index: %s\n",
                         cfg.cacheIndexPath.c_str());
        } catch (const FatalError &err) {
            std::fprintf(stderr, "xloopsd: %s\n", err.what());
        }
    }
    ::unlink(cfg.socketPath.c_str());
    std::fprintf(stderr, "xloopsd: drained cleanly\n");
    return 0;
}

} // namespace xloops
