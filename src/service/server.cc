#include "service/server.h"

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.h"
#include "common/metrics.h"
#include "service/protocol.h"

namespace xloops {

namespace {

/** Read up to the next '\n' (exclusive); false on EOF/error. */
bool
readLine(int fd, std::string &line)
{
    line.clear();
    char c;
    while (true) {
        const ssize_t n = ::read(fd, &c, 1);
        if (n == 0)
            return !line.empty();
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (c == '\n')
            return true;
        line.push_back(c);
        if (line.size() > (64u << 20))
            return false;  // absurd line: drop the connection
    }
}

bool
writeAll(int fd, const std::string &text)
{
    size_t off = 0;
    while (off < text.size()) {
        const ssize_t n =
            ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** Wire metric handles, resolved once. */
struct WireMetrics
{
    Counter &connections =
        metricsRegistry().counter("xloops_wire_connections_total");
    Counter &requests =
        metricsRegistry().counter("xloops_wire_requests_total");
    Counter &decodeErrors =
        metricsRegistry().counter("xloops_wire_decode_errors_total");
    Counter &bytesIn =
        metricsRegistry().counter("xloops_wire_bytes_in_total");
    Counter &bytesOut =
        metricsRegistry().counter("xloops_wire_bytes_out_total");
};

WireMetrics &
wireMetrics()
{
    static WireMetrics wm;
    return wm;
}

/** One request line -> one response line. */
std::string
handleRequest(Supervisor &sup, const std::string &line,
              std::atomic<bool> &drainRequested)
{
    wireMetrics().requests.inc();
    Request req;
    try {
        req = parseRequest(line);
    } catch (const FatalError &err) {
        wireMetrics().decodeErrors.inc();
        return encodeError(err.what());
    }

    try {
        if (req.op == "ping")
            return encodeOk();
        if (req.op == "stats")
            return encodeStats(sup.stats());
        if (req.op == "metrics") {
            // Publish first so the scrape's job-accounting family is
            // one consistent instant (the conservation invariant).
            sup.publishMetrics();
            return encodeMetrics(
                metricsRegistry().jsonText(/*pretty=*/false),
                metricsRegistry().promText());
        }
        if (req.op == "health")
            return encodeHealth(sup.health());
        if (req.op == "drain") {
            // The accept loop owns the actual drain (it must also
            // stop accepting and persist the cache); just signal it.
            drainRequested.store(true);
            return encodeOk();
        }
        if (req.op == "status")
            return encodeOutcome(sup.status(req.jobId));
        if (req.op == "capsule") {
            const std::string text = sup.capsuleText(req.jobId);
            if (text.empty())
                return encodeError(
                    strf("job ", req.jobId, " has no capsule"));
            return encodeCapsule(req.jobId, text);
        }

        // submit: synchronous — the response is the terminal outcome.
        const Admission adm = sup.submit(req.job);
        if (!adm.accepted) {
            if (adm.reason == "overloaded")
                return encodeShed(adm.jobId);
            return encodeError(adm.reason);
        }
        return encodeOutcome(sup.wait(adm.jobId));
    } catch (const FatalError &err) {
        return encodeError(err.what());
    }
}

} // namespace

int
runServer(const ServerConfig &cfg, const std::atomic<u32> &shutdownFlag)
{
    Supervisor sup(cfg.supervisor);

    // Condemned cache data is preserved next to the capsules so a
    // corruption report always has its evidence attached.
    const std::string quarantineDir =
        cfg.supervisor.artifactDir + "/quarantine";
    ::mkdir(quarantineDir.c_str(), 0755);  // may already exist
    sup.cache().setQuarantineDir(quarantineDir);

    const RecoveryReport &rr = sup.recovery();
    if (rr.recovered || rr.tornTail)
        std::fprintf(stderr,
                     "xloopsd: recovered %llu job(s) from journal "
                     "(%llu resumable from checkpoint)%s\n",
                     static_cast<unsigned long long>(rr.recovered),
                     static_cast<unsigned long long>(rr.withCheckpoint),
                     rr.tornTail ? ", torn tail truncated" : "");

    if (!cfg.cacheIndexPath.empty()) {
        const size_t restored =
            sup.cache().loadIndex(cfg.cacheIndexPath);
        if (restored)
            std::fprintf(stderr,
                         "xloopsd: restored %zu cached results\n",
                         restored);
    }

    const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        fatal(strf("socket: ", std::strerror(errno)));

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg.socketPath.size() >= sizeof(addr.sun_path)) {
        ::close(listenFd);
        fatal("socket path too long: " + cfg.socketPath);
    }
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(cfg.socketPath.c_str());  // stale socket from a crash
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        ::close(listenFd);
        fatal(strf("bind ", cfg.socketPath, ": ",
                   std::strerror(errno)));
    }
    if (::listen(listenFd, 64) < 0) {
        ::close(listenFd);
        fatal(strf("listen: ", std::strerror(errno)));
    }
    std::fprintf(stderr, "xloopsd: listening on %s\n",
                 cfg.socketPath.c_str());

    std::atomic<bool> drainRequested{false};
    std::vector<std::thread> connections;
    std::vector<int> connFds;
    std::mutex connMutex;

    // Periodic metrics log: one compact "xloops-metrics-1" line per
    // interval, so a misbehaving daemon leaves a trend to post-mortem
    // even when nobody was scraping. The final line lands at drain.
    std::mutex logMutex;
    std::condition_variable logCv;
    bool logStop = false;
    std::ofstream metricsLog;
    std::thread metricsLogger;
    const auto appendSnapshot = [&] {
        sup.publishMetrics();
        metricsLog << metricsRegistry().jsonText(/*pretty=*/false)
                   << "\n";
        metricsLog.flush();
    };
    if (!cfg.metricsLogPath.empty()) {
        metricsLog.open(cfg.metricsLogPath, std::ios::app);
        if (!metricsLog)
            fatal("cannot write metrics log " + cfg.metricsLogPath);
        metricsLogger = std::thread([&] {
            std::unique_lock<std::mutex> lock(logMutex);
            while (!logStop) {
                logCv.wait_for(
                    lock,
                    std::chrono::milliseconds(cfg.metricsIntervalMs));
                if (logStop)
                    return;
                appendSnapshot();
            }
        });
    }

    // Accept with a poll timeout so shutdown requests (signal or
    // protocol "drain") are noticed within ~200ms even when idle.
    while (shutdownFlag.load() == 0 && !drainRequested.load()) {
        pollfd pfd{listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0 && errno != EINTR)
            break;
        if (ready <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int connFd = ::accept(listenFd, nullptr, nullptr);
        if (connFd < 0)
            continue;
        wireMetrics().connections.inc();
        std::lock_guard<std::mutex> lock(connMutex);
        connFds.push_back(connFd);
        connections.emplace_back([connFd, &sup, &drainRequested,
                                  &shutdownFlag] {
            std::string line;
            while (readLine(connFd, line)) {
                if (line.empty())
                    continue;
                wireMetrics().bytesIn.inc(line.size() + 1);
                const std::string response =
                    handleRequest(sup, line, drainRequested);
                if (!writeAll(connFd, response + "\n"))
                    break;
                wireMetrics().bytesOut.inc(response.size() + 1);
                if (drainRequested.load() || shutdownFlag.load())
                    break;
            }
            // The fd is shut down (not closed) here so the main
            // thread can still safely shut it down during drain
            // without an fd-reuse race; it closes everything after
            // the join.
            ::shutdown(connFd, SHUT_RDWR);
        });
    }

    // Graceful drain: no new connections, no new jobs; jobs already
    // running finish (or honor their stop flags), their clients get
    // real responses, and the cache survives to the next daemon.
    std::fprintf(stderr, "xloopsd: draining\n");
    ::close(listenFd);
    sup.drain();  // in-flight submits resolve; waiters respond
    {
        std::lock_guard<std::mutex> lock(connMutex);
        // Unblock connections idling in read() with no request.
        for (const int fd : connFds)
            ::shutdown(fd, SHUT_RDWR);
        for (std::thread &t : connections)
            t.join();
        for (const int fd : connFds)
            ::close(fd);
    }
    if (!cfg.cacheIndexPath.empty()) {
        try {
            sup.cache().saveIndex(cfg.cacheIndexPath);
            std::fprintf(stderr, "xloopsd: cache index: %s\n",
                         cfg.cacheIndexPath.c_str());
        } catch (const FatalError &err) {
            std::fprintf(stderr, "xloopsd: %s\n", err.what());
        }
    }

    // Telemetry artifacts: final metrics snapshot, the flight
    // recorder (the service context leading up to shutdown), and the
    // per-job span ring as a Perfetto-viewable trace.
    if (metricsLogger.joinable()) {
        {
            std::lock_guard<std::mutex> lock(logMutex);
            logStop = true;
        }
        logCv.notify_all();
        metricsLogger.join();
        appendSnapshot();
        std::fprintf(stderr, "xloopsd: metrics log: %s\n",
                     cfg.metricsLogPath.c_str());
    }
    if (!cfg.flightDumpPath.empty()) {
        std::ofstream out(cfg.flightDumpPath);
        if (out) {
            out << sup.flight().dumpJson(/*pretty=*/true) << "\n";
            std::fprintf(stderr, "xloopsd: flight dump: %s\n",
                         cfg.flightDumpPath.c_str());
        } else {
            std::fprintf(stderr, "xloopsd: cannot write %s\n",
                         cfg.flightDumpPath.c_str());
        }
    }
    if (!cfg.tracePath.empty()) {
        std::ofstream out(cfg.tracePath);
        if (out) {
            sup.spanTracer().writeChromeJson(out);
            std::fprintf(stderr, "xloopsd: span trace: %s\n",
                         cfg.tracePath.c_str());
        } else {
            std::fprintf(stderr, "xloopsd: cannot write %s\n",
                         cfg.tracePath.c_str());
        }
    }

    ::unlink(cfg.socketPath.c_str());
    std::fprintf(stderr, "xloopsd: drained cleanly\n");
    return 0;
}

} // namespace xloops
