/**
 * @file
 * Retry taxonomy and exponential backoff for supervised jobs.
 *
 * The classification leans on the SimError kinds PR 1 introduced:
 *
 *   Retryable — the *schedule* wedged, not the program. Watchdog,
 *   CycleLimit, and StructuralHang describe a timing model stuck
 *   under one adversarial interleaving; Deadline describes a run the
 *   service killed because the machine was overloaded. A fresh
 *   attempt (under a re-derived fault seed, or on a less-loaded
 *   machine) can legitimately succeed.
 *
 *   Fatal — retrying reproduces the failure byte-for-byte or the
 *   caller asked us to stop. Divergence (the architectural contract
 *   broke: always capsule, never retry — a retry would only destroy
 *   the evidence), InstLimit (a deterministic quota: the same program
 *   exceeds it again), Interrupted and Cancelled (explicit stops).
 *
 * Backoff is exponential with full-jitter drawn from a *named* RNG
 * stream ("service.retry" of an RngPool rooted at the job's seed), so
 * the exact wait sequence of any job is reproducible in tests while
 * still decorrelating real retry storms across jobs.
 */

#ifndef XLOOPS_SERVICE_RETRY_H
#define XLOOPS_SERVICE_RETRY_H

#include "common/rng.h"
#include "common/sim_error.h"

namespace xloops {

/** What the supervisor may do about a failed attempt. */
enum class FailureClass
{
    Retryable,  ///< re-run with backoff (bounded by RetryPolicy)
    Fatal,      ///< report immediately; SimErrors are capsuled
};

FailureClass classifySimError(SimErrorKind kind);

const char *failureClassName(FailureClass c);

/** Bounds of the retry loop (server-wide defaults; a JobSpec can
 *  lower maxRetries per job, never raise it). */
struct RetryPolicy
{
    unsigned maxRetries = 3;   ///< attempts = 1 + maxRetries at most
    u64 baseBackoffMs = 100;   ///< wait before the first retry
    u64 maxBackoffMs = 5'000;  ///< exponential growth cap
    double jitterFrac = 0.25;  ///< uniform in [1-f, 1+f] of the base
};

/**
 * Backoff before retry number @p retryIndex (0-based): the capped
 * exponential base * 2^retryIndex, jittered by a factor drawn from
 * @p jitter. Monotone (ignoring jitter) and bounded by
 * maxBackoffMs * (1 + jitterFrac).
 */
u64 backoffMs(const RetryPolicy &policy, unsigned retryIndex,
              Rng &jitter);

/** The named stream backoffMs jitter must draw from, so tests and
 *  the supervisor agree on the exact wait sequence. */
inline Rng &
retryJitterStream(RngPool &pool)
{
    return pool.stream("service.retry");
}

} // namespace xloops

#endif // XLOOPS_SERVICE_RETRY_H
