#include "service/cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/json.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "service/job.h"

namespace xloops {

namespace {

u64
mixString(u64 h, const std::string &s)
{
    for (const char c : s)
        h = mix64(h ^ static_cast<u8>(c));
    return mix64(h);
}

constexpr const char *cacheSchema = "xloops-cache-1";

std::string
crcHex(u32 crc)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%08x", crc);
    return buf;
}

} // namespace

u64
resultCacheKey(u64 programHash, const JobSpec &spec)
{
    u64 h = mix64(programHash);
    h = mixString(h, spec.config);
    h = mixString(h, spec.mode);
    h = mix64(h ^ (spec.gpBinary ? 1 : 0));
    h = mix64(h ^ spec.maxInsts);
    h = mix64(h ^ spec.injectSeed);
    h = mixString(h, doubleBits(spec.injectRate));
    h = mixString(h, doubleBits(spec.injectArchRate));
    h = mix64(h ^ (spec.haveWatchdog ? spec.watchdogCycles + 1 : 0));
    h = mix64(h ^ (spec.lockstep ? 2 : 0));
    return h ? h : 1;
}

ResultCache::ResultCache(size_t max_entries)
    : maxEntries(max_entries ? max_entries : 1)
{
}

bool
ResultCache::lookup(u64 key, std::string &resultJson)
{
    std::function<void(u64, const std::string &)> hook;
    {
        std::lock_guard<std::mutex> lock(m);
        const auto it = entries.find(key);
        if (it == entries.end()) {
            missCount++;
            return false;
        }
        if (crc32(it->second.text) != it->second.crc) {
            // The stored text no longer matches its insert-time
            // checksum. Never serve it: preserve the evidence, drop
            // the entry, and degrade to a miss so the supervisor
            // transparently re-simulates.
            quarantine(strf("cache-entry-0x", std::hex, key, ".txt"),
                       it->second.text);
            byteCount -= it->second.text.size();
            entries.erase(it);
            corruptCount++;
            missCount++;
            hook = corruptionHook;
        } else {
            hitCount++;
            resultJson = it->second.text;
            return true;
        }
    }
    if (hook)
        hook(key, "checksum mismatch on lookup");
    return false;
}

void
ResultCache::insert(u64 key, const std::string &resultJson)
{
    std::lock_guard<std::mutex> lock(m);
    Entry e{resultJson, crc32(resultJson)};
    if (entries.emplace(key, std::move(e)).second) {
        byteCount += resultJson.size();
        insertionOrder.push_back(key);
        evictIfNeeded();
    }
}

void
ResultCache::evictIfNeeded()
{
    while (entries.size() > maxEntries && !insertionOrder.empty()) {
        const auto it = entries.find(insertionOrder.front());
        if (it != entries.end()) {
            byteCount -= it->second.text.size();
            entries.erase(it);
            evictCount++;
        }
        insertionOrder.pop_front();
    }
}

void
ResultCache::quarantine(const std::string &name, const std::string &text)
{
    if (quarantineDir.empty())
        return;
    const std::string path = strf(quarantineDir, "/", name);
    std::ofstream out(path, std::ios::binary);
    if (out) {
        out << text;
    } else {
        warn(strf("cannot quarantine corrupt cache data to ", path));
    }
}

u64
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(m);
    return hitCount;
}

u64
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(m);
    return missCount;
}

u64
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(m);
    return evictCount;
}

u64
ResultCache::bytes() const
{
    std::lock_guard<std::mutex> lock(m);
    return byteCount;
}

u64
ResultCache::corruptions() const
{
    std::lock_guard<std::mutex> lock(m);
    return corruptCount;
}

size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(m);
    return entries.size();
}

void
ResultCache::setQuarantineDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(m);
    quarantineDir = dir;
}

void
ResultCache::setCorruptionHook(
    std::function<void(u64, const std::string &)> fn)
{
    std::lock_guard<std::mutex> lock(m);
    corruptionHook = std::move(fn);
}

void
ResultCache::saveIndex(const std::string &path) const
{
    std::ostringstream out;
    {
        std::lock_guard<std::mutex> lock(m);
        JsonWriter w(out, /*pretty=*/true);
        w.beginObject();
        w.field("schema", cacheSchema);
        w.field("num_entries", static_cast<u64>(entries.size()));
        w.key("entries").beginObject();
        // Result text is stored verbatim (it is itself JSON text) so
        // a restored hit is still byte-identical to the original run;
        // the crc lets loadIndex spot bit rot entry by entry.
        for (const auto &[key, e] : entries) {
            w.key(strf("0x", std::hex, key));
            w.beginObject();
            w.field("crc", crcHex(e.crc));
            w.field("text", e.text);
            w.endObject();
        }
        w.endObject();
        w.endObject();
        out << "\n";
    }
    atomicWriteFile(path, out.str());
}

size_t
ResultCache::loadIndex(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return 0;  // cold start
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::vector<std::pair<u64, std::string>> condemned;
    size_t loaded = 0;
    try {
        const JsonValue v = jsonParse(text);
        if (v.at("schema").asString() != cacheSchema)
            fatal(strf("'", path, "' is not an ", cacheSchema, " index"));

        std::lock_guard<std::mutex> lock(m);
        for (const auto &[key, val] : v.at("entries").members()) {
            const u64 k = parseU64(key);
            Entry e;
            if (val.kind() == JsonValue::Kind::String) {
                // Legacy pre-checksum index entry: adopt it and
                // compute the checksum it never had.
                e.text = val.asString();
                e.crc = crc32(e.text);
            } else {
                e.text = val.at("text").asString();
                e.crc = static_cast<u32>(parseU64(val.at("crc").asString()));
                if (crc32(e.text) != e.crc) {
                    quarantine(strf("cache-entry-", key, ".txt"), e.text);
                    corruptCount++;
                    condemned.emplace_back(k, "checksum mismatch in index");
                    continue;
                }
            }
            if (entries.emplace(k, std::move(e)).second) {
                byteCount += entries.at(k).text.size();
                insertionOrder.push_back(k);
                loaded++;
            }
        }
        evictIfNeeded();
    } catch (const FatalError &e) {
        // A torn or rotted index must not keep the daemon down — warm
        // results are a luxury, availability is not. Preserve the
        // wreck and start cold.
        {
            std::lock_guard<std::mutex> lock(m);
            quarantine("cache-index.corrupt", text);
            corruptCount++;
        }
        warn(strf("cache index ", path, " unreadable (", e.what(),
                  "); starting cold"));
        condemned.emplace_back(0, "index unreadable");
    }

    std::function<void(u64, const std::string &)> hook;
    {
        std::lock_guard<std::mutex> lock(m);
        hook = corruptionHook;
    }
    if (hook)
        for (const auto &[k, why] : condemned)
            hook(k, why);
    return loaded;
}

} // namespace xloops
