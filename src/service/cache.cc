#include "service/cache.h"

#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "service/job.h"

namespace xloops {

namespace {

u64
mixString(u64 h, const std::string &s)
{
    for (const char c : s)
        h = mix64(h ^ static_cast<u8>(c));
    return mix64(h);
}

constexpr const char *cacheSchema = "xloops-cache-1";

} // namespace

u64
resultCacheKey(u64 programHash, const JobSpec &spec)
{
    u64 h = mix64(programHash);
    h = mixString(h, spec.config);
    h = mixString(h, spec.mode);
    h = mix64(h ^ (spec.gpBinary ? 1 : 0));
    h = mix64(h ^ spec.maxInsts);
    h = mix64(h ^ spec.injectSeed);
    h = mixString(h, doubleBits(spec.injectRate));
    h = mixString(h, doubleBits(spec.injectArchRate));
    h = mix64(h ^ (spec.haveWatchdog ? spec.watchdogCycles + 1 : 0));
    h = mix64(h ^ (spec.lockstep ? 2 : 0));
    return h ? h : 1;
}

ResultCache::ResultCache(size_t max_entries)
    : maxEntries(max_entries ? max_entries : 1)
{
}

bool
ResultCache::lookup(u64 key, std::string &resultJson)
{
    std::lock_guard<std::mutex> lock(m);
    const auto it = entries.find(key);
    if (it == entries.end()) {
        missCount++;
        return false;
    }
    hitCount++;
    resultJson = it->second;
    return true;
}

void
ResultCache::insert(u64 key, const std::string &resultJson)
{
    std::lock_guard<std::mutex> lock(m);
    if (entries.emplace(key, resultJson).second) {
        byteCount += resultJson.size();
        insertionOrder.push_back(key);
        evictIfNeeded();
    }
}

void
ResultCache::evictIfNeeded()
{
    while (entries.size() > maxEntries && !insertionOrder.empty()) {
        const auto it = entries.find(insertionOrder.front());
        if (it != entries.end()) {
            byteCount -= it->second.size();
            entries.erase(it);
            evictCount++;
        }
        insertionOrder.pop_front();
    }
}

u64
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(m);
    return hitCount;
}

u64
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(m);
    return missCount;
}

u64
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(m);
    return evictCount;
}

u64
ResultCache::bytes() const
{
    std::lock_guard<std::mutex> lock(m);
    return byteCount;
}

size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(m);
    return entries.size();
}

void
ResultCache::saveIndex(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(m);
    std::ofstream out(path);
    if (!out)
        fatal("cannot write cache index " + path);
    JsonWriter w(out, /*pretty=*/true);
    w.beginObject();
    w.field("schema", cacheSchema);
    w.field("num_entries", static_cast<u64>(entries.size()));
    w.key("entries").beginObject();
    // Entries are stored verbatim (they are themselves JSON text) so
    // a restored hit is still byte-identical to the original run.
    for (const auto &[key, text] : entries) {
        w.key(strf("0x", std::hex, key));
        w.value(text);
    }
    w.endObject();
    w.endObject();
    out << "\n";
}

size_t
ResultCache::loadIndex(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return 0;  // cold start
    std::ostringstream buf;
    buf << in.rdbuf();
    const JsonValue v = jsonParse(buf.str());
    if (v.at("schema").asString() != cacheSchema)
        fatal(strf("'", path, "' is not an ", cacheSchema, " index"));

    std::lock_guard<std::mutex> lock(m);
    size_t loaded = 0;
    for (const auto &[key, text] : v.at("entries").members()) {
        if (entries.emplace(parseU64(key), text.asString()).second) {
            byteCount += text.asString().size();
            insertionOrder.push_back(parseU64(key));
            loaded++;
        }
    }
    evictIfNeeded();
    return loaded;
}

} // namespace xloops
