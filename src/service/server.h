/**
 * @file
 * The daemon's socket front end: accept loop, per-connection line
 * protocol, and graceful-drain wiring. All policy lives in the
 * Supervisor — this layer only moves lines.
 */

#ifndef XLOOPS_SERVICE_SERVER_H
#define XLOOPS_SERVICE_SERVER_H

#include <atomic>
#include <string>

#include "service/supervisor.h"

namespace xloops {

/** Daemon front-end knobs (see tools/xloopsd.cc flags). */
struct ServerConfig
{
    std::string socketPath = "xloopsd.sock";
    std::string cacheIndexPath;  ///< persisted cache ("" = none)
    SupervisorConfig supervisor;

    /** Append one compact "xloops-metrics-1" line per interval (plus
     *  a final one at drain) for post-mortem trend analysis. */
    std::string metricsLogPath;        ///< "" = no metrics log
    u64 metricsIntervalMs = 1000;

    /** Write the flight-recorder dump here on drain/SIGTERM. */
    std::string flightDumpPath;

    /** Write the per-job span ring as Chrome trace JSON on drain. */
    std::string tracePath;
};

/**
 * Run the daemon: bind a Unix-domain stream socket at
 * cfg.socketPath, serve connections until @p shutdownFlag goes
 * nonzero (the signal handlers set it), then drain gracefully —
 * stop accepting, cancel the backlog, finish running jobs, persist
 * the cache index, unlink the socket. Returns the process exit code.
 */
int runServer(const ServerConfig &cfg,
              const std::atomic<u32> &shutdownFlag);

} // namespace xloops

#endif // XLOOPS_SERVICE_SERVER_H
