/**
 * @file
 * Bounded MPMC job queue — the service's admission-control point.
 *
 * The bound is the load-shedding mechanism: when the queue is full,
 * tryPush refuses and the daemon answers "overloaded" instead of
 * buffering unboundedly (a full queue means the workers are already
 * saturated for longer than any client should wait; queueing deeper
 * only converts overload into timeout storms). close() is the drain
 * half: after it, pushes are refused and pops return false once the
 * backlog is empty, so worker threads exit deterministically.
 */

#ifndef XLOOPS_SERVICE_QUEUE_H
#define XLOOPS_SERVICE_QUEUE_H

#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/types.h"

namespace xloops {

/** Bounded FIFO of job ids; blocking pop, non-blocking push. */
class BoundedJobQueue
{
  public:
    explicit BoundedJobQueue(size_t max_depth = 64);

    /** Admit @p jobId; false when the queue is full or closed (the
     *  caller sheds the job — it was never queued). */
    bool tryPush(u64 jobId);

    /** Admit @p jobId even past the bound (crash recovery: a job the
     *  dead daemon already acknowledged must never be shed, but it
     *  still counts toward depth() so fresh submissions feel the
     *  backpressure). False only when closed. */
    bool forcePush(u64 jobId);

    /** Block for the next job; false when closed and drained (the
     *  calling worker should exit). */
    bool pop(u64 &jobId);

    /** Remove a queued job before a worker claims it (cancellation);
     *  false when it already left the queue. */
    bool remove(u64 jobId);

    /** Refuse new pushes and wake all poppers. Idempotent. */
    void close();

    size_t depth() const;
    bool isClosed() const;

  private:
    mutable std::mutex m;
    std::condition_variable cv;
    std::deque<u64> jobs;
    size_t maxDepth;
    bool closedFlag = false;
};

} // namespace xloops

#endif // XLOOPS_SERVICE_QUEUE_H
