#include "service/protocol.h"

#include <functional>
#include <sstream>

#include "common/json.h"
#include "common/log.h"

namespace xloops {

namespace {

constexpr const char *jobSchema = "xloops-job-1";
constexpr const char *resultSchema = "xloops-result-1";

/** Every response line starts the same way. */
void
beginResult(JsonWriter &w, const char *status)
{
    w.beginObject();
    w.field("schema", resultSchema);
    w.field("status", status);
}

std::string
oneLine(const std::function<void(JsonWriter &)> &fill)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    fill(w);
    return os.str();
}

} // namespace

Request
parseRequest(const std::string &line)
{
    const JsonValue v = jsonParse(line);
    if (!v.has("schema") || v.at("schema").asString() != jobSchema)
        fatal(strf("request is not ", jobSchema));
    Request req;
    req.op = v.at("op").asString();
    if (req.op == "submit") {
        req.job = jobSpecFromJson(v.at("job"));
    } else if (req.op == "status" || req.op == "capsule") {
        req.jobId = v.at("id").asU64();
    } else if (req.op != "ping" && req.op != "stats" &&
               req.op != "metrics" && req.op != "health" &&
               req.op != "drain") {
        fatal("unknown op '" + req.op + "'");
    }
    return req;
}

std::string
encodeRequest(const Request &req)
{
    return oneLine([&](JsonWriter &w) {
        w.beginObject();
        w.field("schema", jobSchema);
        w.field("op", req.op);
        if (req.op == "submit") {
            w.key("job").beginObject();
            req.job.toJson(w);
            w.endObject();
        } else if (req.op == "status" || req.op == "capsule") {
            w.field("id", req.jobId);
        }
        w.endObject();
    });
}

std::string
encodeOutcome(const JobOutcome &outcome)
{
    return oneLine([&](JsonWriter &w) {
        beginResult(w, jobStatusName(outcome.status));
        w.field("id", outcome.jobId);
        w.field("attempts", outcome.attempts);
        w.field("cached", outcome.cached);
        if (!outcome.error.empty())
            w.field("error", outcome.error);
        if (!outcome.errorKind.empty())
            w.field("error_kind", outcome.errorKind);
        if (!outcome.capsulePath.empty())
            w.field("capsule_path", outcome.capsulePath);
        w.field("cycles", outcome.cycles);
        w.field("gpp_insts", outcome.gppInsts);
        // Span timings: with attempts and cached above, these answer
        // "why was this job slow" from the reply alone.
        w.field("queue_wait_us", outcome.queueWaitUs);
        w.field("cache_lookup_us", outcome.cacheLookupUs);
        w.field("sim_us", outcome.simUs);
        // The canonical "xloops-stats-1" document, embedded as an
        // escaped string so the response stays one line and a hit is
        // byte-for-byte what the cold run wrote.
        if (!outcome.statsJson.empty())
            w.field("stats", outcome.statsJson);
        w.endObject();
    });
}

std::string
encodeShed(u64 jobId)
{
    return oneLine([&](JsonWriter &w) {
        beginResult(w, "overloaded");
        w.field("id", jobId);
        w.field("error", "queue full: job shed by admission control");
        w.endObject();
    });
}

std::string
encodeError(const std::string &reason)
{
    return oneLine([&](JsonWriter &w) {
        beginResult(w, "invalid");
        w.field("error", reason);
        w.endObject();
    });
}

std::string
encodeOk()
{
    return oneLine([&](JsonWriter &w) {
        beginResult(w, "ok");
        w.endObject();
    });
}

std::string
encodeStats(const SupervisorStats &stats)
{
    return oneLine([&](JsonWriter &w) {
        beginResult(w, "ok");
        w.field("submitted", stats.submitted);
        w.field("done", stats.done);
        w.field("failed", stats.failed);
        w.field("shed", stats.shed);
        w.field("cancelled", stats.cancelled);
        w.field("retries", stats.retries);
        w.field("cache_hits", stats.cacheHits);
        w.field("cache_misses", stats.cacheMisses);
        w.field("queued", stats.queued);
        w.field("running", stats.running);
        w.field("recovered", stats.recovered);
        w.field("resumed", stats.resumed);
        w.endObject();
    });
}

std::string
encodeMetrics(const std::string &metricsJson, const std::string &promText)
{
    return oneLine([&](JsonWriter &w) {
        beginResult(w, "ok");
        w.field("metrics", metricsJson);
        w.field("prom", promText);
        w.endObject();
    });
}

std::string
encodeHealth(const HealthInfo &health)
{
    return oneLine([&](JsonWriter &w) {
        beginResult(w, "ok");
        w.field("uptime_us", health.uptimeUs);
        w.field("queued", health.queued);
        w.field("running", health.running);
        w.field("in_flight", health.inFlight);
        w.field("cache_entries", health.cacheEntries);
        w.field("degraded", health.degraded);
        w.field("draining", health.draining);
        w.endObject();
    });
}

std::string
encodeCapsule(u64 jobId, const std::string &capsule)
{
    return oneLine([&](JsonWriter &w) {
        beginResult(w, "ok");
        w.field("id", jobId);
        w.field("capsule", capsule);
        w.endObject();
    });
}

} // namespace xloops
