#include "service/retry.h"

#include <algorithm>

namespace xloops {

FailureClass
classifySimError(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Watchdog:
      case SimErrorKind::CycleLimit:
      case SimErrorKind::StructuralHang:
      case SimErrorKind::Deadline:
        return FailureClass::Retryable;

      case SimErrorKind::InstLimit:
      case SimErrorKind::Divergence:
      case SimErrorKind::Interrupted:
      case SimErrorKind::Cancelled:
        return FailureClass::Fatal;
    }
    return FailureClass::Fatal;  // unknown kinds never loop
}

const char *
failureClassName(FailureClass c)
{
    return c == FailureClass::Retryable ? "retryable" : "fatal";
}

u64
backoffMs(const RetryPolicy &policy, unsigned retryIndex, Rng &jitter)
{
    // Capped exponential: base * 2^retryIndex, saturating well before
    // the shift can overflow.
    u64 wait = policy.baseBackoffMs;
    for (unsigned i = 0; i < retryIndex && wait < policy.maxBackoffMs;
         i++)
        wait *= 2;
    wait = std::min(wait, policy.maxBackoffMs);

    // Jitter factor in [1 - f, 1 + f]; the draw happens even when
    // f == 0 so the stream advances identically regardless of the
    // policy's jitter setting (reproducibility over cleverness).
    const double roll = static_cast<double>(jitter.nextFloat());
    const double factor =
        1.0 + policy.jitterFrac * (2.0 * roll - 1.0);
    const double jittered = static_cast<double>(wait) * factor;
    return jittered <= 0.0 ? 0 : static_cast<u64>(jittered);
}

} // namespace xloops
