/**
 * @file
 * Minimal blocking client for the xloopsd line protocol, shared by
 * the xloopsc CLI and the load generator: connect to the Unix
 * socket, write one request line, read one response line.
 */

#ifndef XLOOPS_SERVICE_CLIENT_H
#define XLOOPS_SERVICE_CLIENT_H

#include <string>

namespace xloops {

class ServiceClient
{
  public:
    /** Connect to the daemon at @p socketPath; throws FatalError
     *  when the daemon is not there. */
    explicit ServiceClient(const std::string &socketPath);

    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Send @p line, block for the response line. Throws FatalError
     *  when the connection dies (daemon crash = client error, not a
     *  hang). */
    std::string request(const std::string &line);

  private:
    int fd = -1;
};

} // namespace xloops

#endif // XLOOPS_SERVICE_CLIENT_H
