/**
 * @file
 * Minimal blocking client for the xloopsd line protocol, shared by
 * the xloopsc CLI and the load generator: connect to the Unix
 * socket, write one request line, read one response line.
 */

#ifndef XLOOPS_SERVICE_CLIENT_H
#define XLOOPS_SERVICE_CLIENT_H

#include <string>

namespace xloops {

class ServiceClient
{
  public:
    /**
     * Connect to the daemon at @p socketPath; throws FatalError when
     * the daemon is not there. A connection refused because the
     * daemon is mid-restart (ECONNREFUSED, or ENOENT while the new
     * socket is not yet bound) retries with capped exponential
     * backoff for up to @p retryBudgetMs — clients ride through a
     * crash-recovery cycle instead of failing the instant the old
     * socket vanishes. Pass 0 to fail fast.
     */
    explicit ServiceClient(const std::string &socketPath,
                           unsigned retryBudgetMs = 2000);

    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Send @p line, block for the response line. Throws FatalError
     *  when the connection dies (daemon crash = client error, not a
     *  hang). */
    std::string request(const std::string &line);

  private:
    int fd = -1;
};

} // namespace xloops

#endif // XLOOPS_SERVICE_CLIENT_H
