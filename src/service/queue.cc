#include "service/queue.h"

#include <algorithm>

namespace xloops {

BoundedJobQueue::BoundedJobQueue(size_t max_depth)
    : maxDepth(max_depth ? max_depth : 1)
{
}

bool
BoundedJobQueue::tryPush(u64 jobId)
{
    {
        std::lock_guard<std::mutex> lock(m);
        if (closedFlag || jobs.size() >= maxDepth)
            return false;
        jobs.push_back(jobId);
    }
    cv.notify_one();
    return true;
}

bool
BoundedJobQueue::forcePush(u64 jobId)
{
    {
        std::lock_guard<std::mutex> lock(m);
        if (closedFlag)
            return false;
        jobs.push_back(jobId);
    }
    cv.notify_one();
    return true;
}

bool
BoundedJobQueue::pop(u64 &jobId)
{
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return closedFlag || !jobs.empty(); });
    if (jobs.empty())
        return false;  // closed and drained
    jobId = jobs.front();
    jobs.pop_front();
    return true;
}

bool
BoundedJobQueue::remove(u64 jobId)
{
    std::lock_guard<std::mutex> lock(m);
    const auto it = std::find(jobs.begin(), jobs.end(), jobId);
    if (it == jobs.end())
        return false;
    jobs.erase(it);
    return true;
}

void
BoundedJobQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(m);
        closedFlag = true;
    }
    cv.notify_all();
}

size_t
BoundedJobQueue::depth() const
{
    std::lock_guard<std::mutex> lock(m);
    return jobs.size();
}

bool
BoundedJobQueue::isClosed() const
{
    std::lock_guard<std::mutex> lock(m);
    return closedFlag;
}

} // namespace xloops
