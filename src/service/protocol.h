/**
 * @file
 * The daemon's wire protocol: newline-delimited JSON over a Unix
 * socket. One request line ("xloops-job-1") gets one response line
 * ("xloops-result-1"); both are single-line documents so framing is
 * trivial and any language with a JSON library and a socket is a
 * client. docs/SERVICE.md is the normative reference.
 *
 * Requests:  {"schema":"xloops-job-1","op":<op>, ...}
 *   op "ping"    — liveness probe
 *   op "submit"  — {"job":{...JobSpec...}}; synchronous (the
 *                  response is the terminal outcome)
 *   op "status"  — {"id":N}: non-blocking outcome snapshot
 *   op "capsule" — {"id":N}: download a failed job's capsule
 *   op "stats"   — server counters
 *   op "metrics" — full telemetry scrape ("xloops-metrics-1" JSON +
 *                  Prometheus text exposition)
 *   op "health"  — one-shot health probe (uptime, queue, in-flight)
 *   op "drain"   — begin graceful shutdown
 *
 * Responses: {"schema":"xloops-result-1","status":<status>, ...}
 *   status is a JobStatus name, or "ok" (ping/stats/metrics/health/
 *   drain), "overloaded" (shed by admission control), or "invalid"
 *   (malformed request / unknown id / rejected spec).
 */

#ifndef XLOOPS_SERVICE_PROTOCOL_H
#define XLOOPS_SERVICE_PROTOCOL_H

#include <string>

#include "service/job.h"
#include "service/supervisor.h"

namespace xloops {

/** A decoded request line. */
struct Request
{
    std::string op;
    JobSpec job;      ///< meaningful when op == "submit"
    u64 jobId = 0;    ///< meaningful for status / capsule
};

/** Parse one request line; throws FatalError on malformed input
 *  (wrong schema, unknown op, missing fields). */
Request parseRequest(const std::string &line);

/** Encode a request (client side). */
std::string encodeRequest(const Request &req);

/** One-line "xloops-result-1" for a job outcome. The stats document
 *  is embedded verbatim under "stats" (parsed, so the line stays
 *  well-formed JSON; re-serialization is byte-stable). */
std::string encodeOutcome(const JobOutcome &outcome);

/** "overloaded" response (admission control shed the job). */
std::string encodeShed(u64 jobId);

/** "invalid" response with a reason. */
std::string encodeError(const std::string &reason);

/** "ok" response to ping / drain. */
std::string encodeOk();

/** "ok" response carrying server counters. */
std::string encodeStats(const SupervisorStats &stats);

/** "ok" response carrying a telemetry scrape: the "xloops-metrics-1"
 *  document (escaped string under "metrics") plus the Prometheus text
 *  exposition (escaped string under "prom"). */
std::string encodeMetrics(const std::string &metricsJson,
                          const std::string &promText);

/** "ok" response carrying a health probe. */
std::string encodeHealth(const HealthInfo &health);

/** "ok" response carrying a capsule document (escaped string). */
std::string encodeCapsule(u64 jobId, const std::string &capsule);

} // namespace xloops

#endif // XLOOPS_SERVICE_PROTOCOL_H
