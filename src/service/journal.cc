#include "service/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include <fcntl.h>
#include <unistd.h>

#include "common/json.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/serialize.h"

namespace xloops {

namespace {

constexpr const char *journalSchema = "xloops-journal-1";
constexpr const char *journalMagic = "xj1";

} // namespace

const char *
journalEventName(JournalEvent ev)
{
    switch (ev) {
      case JournalEvent::Open: return "open";
      case JournalEvent::Accepted: return "accepted";
      case JournalEvent::Started: return "started";
      case JournalEvent::Attempt: return "attempt";
      case JournalEvent::Backoff: return "backoff";
      case JournalEvent::Completed: return "completed";
      case JournalEvent::Failed: return "failed";
      case JournalEvent::Shed: return "shed";
      case JournalEvent::Cancelled: return "cancelled";
      case JournalEvent::Recovered: return "recovered";
    }
    return "?";
}

namespace {

bool
journalEventFromName(const std::string &name, JournalEvent &ev)
{
    static const std::unordered_map<std::string, JournalEvent> names = {
        { "open", JournalEvent::Open },
        { "accepted", JournalEvent::Accepted },
        { "started", JournalEvent::Started },
        { "attempt", JournalEvent::Attempt },
        { "backoff", JournalEvent::Backoff },
        { "completed", JournalEvent::Completed },
        { "failed", JournalEvent::Failed },
        { "shed", JournalEvent::Shed },
        { "cancelled", JournalEvent::Cancelled },
        { "recovered", JournalEvent::Recovered },
    };
    const auto it = names.find(name);
    if (it == names.end())
        return false;
    ev = it->second;
    return true;
}

/** The compact JSON payload of one record (the CRC's exact input). */
std::string
encodeRecord(u64 seq, JournalEvent ev, u64 jobId, const std::string &detail,
             u64 attempt, const JobSpec *spec)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("seq", seq);
    w.field("t_us", monotonicUs());
    w.field("ev", journalEventName(ev));
    if (ev == JournalEvent::Open) {
        w.field("schema", journalSchema);
    } else {
        w.field("job", jobId);
        if (attempt)
            w.field("attempt", attempt);
        if (!detail.empty())
            w.field("detail", detail);
        if (spec) {
            w.key("spec");
            w.beginObject();
            spec->toJson(w);
            w.endObject();
        }
    }
    w.endObject();
    return os.str();
}

/** Frame @p payload as one journal line. */
std::string
frameRecord(const std::string &payload)
{
    char crcHex[16];
    std::snprintf(crcHex, sizeof crcHex, "%08x", crc32(payload));
    std::string line = journalMagic;
    line += ' ';
    line += crcHex;
    line += ' ';
    line += payload;
    line += '\n';
    return line;
}

} // namespace

Journal::Journal(const std::string &path) : filePath(path)
{
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        fatal(strf("cannot open journal ", path, ": ",
                   std::strerror(errno)));
    append(JournalEvent::Open, 0, "", 0, nullptr, /*sync=*/true);
}

Journal::~Journal()
{
    std::lock_guard<std::mutex> lock(m);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
        fd = -1;
    }
}

void
Journal::append(JournalEvent ev, u64 jobId, const std::string &detail,
                u64 attempt, const JobSpec *spec, bool sync)
{
    std::lock_guard<std::mutex> lock(m);
    if (fd < 0)
        return;
    const std::string line =
        frameRecord(encodeRecord(++seq, ev, jobId, detail, attempt, spec));

    // One write() per record: O_APPEND makes the whole line land as a
    // unit, so concurrent appenders never interleave and a crash tears
    // at most the final record.
    size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (!writeFailed) {
                writeFailed = true;
                warn(strf("journal write to ", filePath, " failed: ",
                          std::strerror(errno),
                          " (durability degraded; will not repeat)"));
            }
            return;
        }
        off += static_cast<size_t>(n);
    }
    if (sync) {
        ::fsync(fd);
        syncCount++;
    }
    metricsRegistry().counter("xloops_journal_records_total").inc();
}

u64
Journal::recordsWritten() const
{
    std::lock_guard<std::mutex> lock(m);
    return seq;
}

u64
Journal::fsyncs() const
{
    std::lock_guard<std::mutex> lock(m);
    return syncCount;
}

namespace {

/** Parse one framed line into @p rec; false on any violation. */
bool
parseRecord(const std::string &line, JournalRecord &rec)
{
    // "xj1 <8-hex> <json>" — fixed prefix widths keep this cheap.
    if (line.size() < 14 || line.compare(0, 4, "xj1 ") != 0 ||
        line[12] != ' ')
        return false;
    const std::string crcHex = line.substr(4, 8);
    u32 wantCrc = 0;
    for (const char c : crcHex) {
        unsigned digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<unsigned>(c - 'a' + 10);
        else
            return false;
        wantCrc = (wantCrc << 4) | digit;
    }
    const std::string payload = line.substr(13);
    if (crc32(payload) != wantCrc)
        return false;

    try {
        const JsonValue v = jsonParse(payload);
        rec = JournalRecord{};
        rec.seq = v.at("seq").asU64();
        rec.atUs = v.at("t_us").asU64();
        if (!journalEventFromName(v.at("ev").asString(), rec.ev))
            return false;
        if (rec.ev == JournalEvent::Open)
            return v.at("schema").asString() == journalSchema;
        rec.jobId = v.at("job").asU64();
        rec.attempt = v.getU64("attempt", 0);
        if (v.has("detail"))
            rec.detail = v.at("detail").asString();
        if (v.has("spec")) {
            // Round-trip through the codec to validate the embedded
            // spec now, while we can still treat it as tail damage —
            // recovery must never throw on a replayed document.
            const JsonValue &spec = v.at("spec");
            jobSpecFromJson(spec);
            std::ostringstream os;
            JsonWriter w(os, /*pretty=*/false);
            writeJsonValue(w, spec);
            rec.specJson = os.str();
        }
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

} // namespace

JournalReplay
replayJournal(const std::string &path)
{
    JournalReplay out;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return out;  // missing journal = cold start

    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    size_t pos = 0;
    u64 lastSeq = 0;
    while (pos < text.size()) {
        const size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            break;  // no terminator: torn final line
        JournalRecord rec;
        if (!parseRecord(text.substr(pos, eol - pos), rec))
            break;  // bad frame/CRC/schema: treat the rest as lost tail
        if (rec.seq <= lastSeq && lastSeq != 0)
            break;  // sequence went backwards: the rest is untrustworthy
        lastSeq = rec.seq;
        out.records.push_back(std::move(rec));
        pos = eol + 1;
    }
    if (pos < text.size()) {
        out.tornTail = true;
        out.tornBytes = text.size() - pos;
    }
    return out;
}

JournalRecovery
recoverPending(const JournalReplay &replay)
{
    JournalRecovery out;

    // jobId -> index into out.pending while the job is still live.
    std::unordered_map<u64, size_t> live;

    for (const JournalRecord &rec : replay.records) {
        switch (rec.ev) {
          case JournalEvent::Open:
          case JournalEvent::Recovered:
            break;
          case JournalEvent::Accepted: {
            if (rec.specJson.empty() || live.count(rec.jobId))
                break;  // malformed or duplicate accept: ignore
            RecoveredJob job;
            job.spec = jobSpecFromJson(jsonParse(rec.specJson));
            job.oldJobId = rec.jobId;
            live[rec.jobId] = out.pending.size();
            out.pending.push_back(std::move(job));
            break;
          }
          case JournalEvent::Started: {
            const auto it = live.find(rec.jobId);
            if (it != live.end())
                out.pending[it->second].started = true;
            break;
          }
          case JournalEvent::Attempt: {
            const auto it = live.find(rec.jobId);
            if (it != live.end()) {
                RecoveredJob &job = out.pending[it->second];
                if (rec.attempt > job.attempts)
                    job.attempts = rec.attempt;
            }
            break;
          }
          case JournalEvent::Backoff:
            break;
          case JournalEvent::Completed:
          case JournalEvent::Failed:
          case JournalEvent::Shed:
          case JournalEvent::Cancelled: {
            const auto it = live.find(rec.jobId);
            if (it == live.end())
                break;
            // Compact: move the last live pending slot into the hole.
            const size_t hole = it->second;
            live.erase(it);
            const size_t last = out.pending.size() - 1;
            if (hole != last) {
                out.pending[hole] = std::move(out.pending[last]);
                live[out.pending[hole].oldJobId] = hole;
            }
            out.pending.pop_back();
            switch (rec.ev) {
              case JournalEvent::Completed: out.completed++; break;
              case JournalEvent::Failed: out.failed++; break;
              case JournalEvent::Shed: out.shed++; break;
              default: out.cancelled++; break;
            }
            break;
          }
        }
    }

    // The compaction above disturbs acceptance order; recovery should
    // re-enqueue oldest-first so FIFO fairness survives the crash.
    std::sort(out.pending.begin(), out.pending.end(),
              [](const RecoveredJob &a, const RecoveredJob &b) {
                  return a.oldJobId < b.oldJobId;
              });
    return out;
}

} // namespace xloops
