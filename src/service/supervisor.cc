#include "service/supervisor.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/fault.h"
#include "common/log.h"
#include "common/loop_profile.h"
#include "common/metrics.h"
#include "common/pool.h"
#include "common/serialize.h"
#include "common/sim_error.h"
#include "kernels/kernel.h"
#include "system/capsule.h"
#include "system/config.h"
#include "system/report.h"

namespace xloops {

namespace {

/** Hash of the program text a job executes (the kernel's assembly
 *  source; spec.gpBinary is a separate key component since the
 *  derived GP-ISA image is a deterministic function of the source). */
u64
programTextHash(const std::string &source)
{
    u64 h = 0x584c4f4f50530931ull;  // "XLOOPS\t1"
    for (const char c : source)
        h = mix64(h ^ static_cast<u8>(c));
    return mix64(h);
}

ExecMode
modeByName(const std::string &mode)
{
    if (mode == "T")
        return ExecMode::Traditional;
    if (mode == "A")
        return ExecMode::Adaptive;
    return ExecMode::Specialized;
}

std::string
readFileText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Hot-path metric handles, resolved once (the registry reference is
 *  stable for process lifetime; see docs/OBSERVABILITY.md §6.1 for
 *  the name catalogue). */
struct SvcMetrics
{
    Counter &deadlineKills =
        metricsRegistry().counter("xloops_deadline_kills_total");
    Counter &backoffs = metricsRegistry().counter("xloops_backoffs_total");
    Counter &backoffMsSlept =
        metricsRegistry().counter("xloops_backoff_ms_total");
    HistogramMetric &queueWaitUs =
        metricsRegistry().histogram("xloops_job_queue_wait_us");
    HistogramMetric &cacheLookupUs =
        metricsRegistry().histogram("xloops_job_cache_lookup_us");
    HistogramMetric &simUs =
        metricsRegistry().histogram("xloops_job_sim_us");
};

SvcMetrics &
svcMetrics()
{
    static SvcMetrics sm;
    return sm;
}

/** The per-error-kind retry counter (label-in-name; rare path, so the
 *  registry lookup per retry is fine). */
Counter &
retryCounterFor(const char *kindName)
{
    return metricsRegistry().counter(
        strf("xloops_retries_total{kind=\"", kindName, "\"}"));
}

} // namespace

Supervisor::Supervisor(const SupervisorConfig &config)
    : cfg(config), resultCache(config.cacheEntries),
      queue(config.queueDepth), paused(config.startPaused)
{
    startUs = monotonicUs();
    spans.enable();

    // Corruption can never serve a wrong answer (the cache degrades
    // to a miss) — but it must also never pass silently.
    resultCache.setCorruptionHook([this](u64 key, const std::string &why) {
        metricsRegistry().counter("xloops_cache_corrupt_total").inc();
        flightRec.record(FlightKind::CacheCorrupt, 0,
                         strf("key 0x", std::hex, key, ": ", why));
    });

    // Recovery must complete before the first worker exists: the
    // journal rotation below re-accepts every carried-over job, and a
    // worker racing that would observe a half-rebuilt queue.
    if (!cfg.journalPath.empty())
        recoverFromJournal();

    unsigned n = cfg.workers;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 2;
    }
    workers.reserve(n);
    for (unsigned i = 0; i < n; i++)
        workers.emplace_back([this] { workerLoop(); });
    watchdog = std::thread([this] { watchdogLoop(); });
}

Supervisor::~Supervisor()
{
    drain();
}

std::string
Supervisor::ckptPathFor(u64 jobId) const
{
    const std::string &dir =
        cfg.checkpointDir.empty() ? cfg.artifactDir : cfg.checkpointDir;
    return strf(dir, "/job-", jobId, ".ckpt.json");
}

void
Supervisor::recoverFromJournal()
{
    JournalRecovery pending;
    if (cfg.recover) {
        const JournalReplay replay = replayJournal(cfg.journalPath);
        pending = recoverPending(replay);
        recoveryInfo.tornTail = replay.tornTail;
        recoveryInfo.previouslyFinished = pending.completed +
                                          pending.failed +
                                          pending.cancelled + pending.shed;
        if (replay.tornTail) {
            metricsRegistry()
                .counter("xloops_journal_torn_tail_total")
                .inc();
            flightRec.record(FlightKind::JournalTorn, 0,
                             strf(replay.tornBytes, " bytes dropped"));
            warn(strf("journal ", cfg.journalPath, ": torn tail (",
                      replay.tornBytes,
                      " bytes dropped) — expected after kill -9"));
        }
    }

    // This generation journals into a sibling first and renames over
    // the old journal only after every carried-over job has been
    // re-accepted in it. A crash during recovery therefore leaves
    // either the old journal (recovery re-runs from scratch) or the
    // complete new one — never a state that forgets a job.
    const std::string tmp = cfg.journalPath + ".new";
    ::unlink(tmp.c_str());  // a leftover from a crash mid-recovery
    journal = std::make_unique<Journal>(tmp);

    for (const RecoveredJob &rj : pending.pending) {
        auto rec = std::make_unique<JobRecord>();
        rec->spec = rj.spec;
        rec->admittedUs = monotonicUs();
        rec->recoveredFrom = rj.oldJobId;
        const u64 id = nextJobId.fetch_add(1);
        rec->outcome.jobId = id;

        // Adopt the old generation's latest periodic checkpoint so a
        // long job resumes mid-flight instead of restarting. The old
        // file is consumed either way: its text now lives in the
        // record, and this generation checkpoints under the new id.
        const std::string oldCkpt = ckptPathFor(rj.oldJobId);
        rec->resumeCkpt = readFileText(oldCkpt);
        ::unlink(oldCkpt.c_str());
        if (!rec->resumeCkpt.empty())
            recoveryInfo.withCheckpoint++;

        journal->append(JournalEvent::Accepted, id, "", 0, &rec->spec,
                        /*sync=*/true);
        journal->append(JournalEvent::Recovered, id,
                        strf("was job ", rj.oldJobId,
                             rj.started ? ", started" : "",
                             rec->resumeCkpt.empty() ? ""
                                                     : ", checkpointed"),
                        rj.attempts);
        flightRec.record(FlightKind::JobRecovered, id,
                         strf("was job ", rj.oldJobId));

        JobRecord *raw = rec.get();
        {
            std::lock_guard<std::mutex> lock(m);
            jobs.emplace(id, std::move(rec));
            counters.submitted++;
            counters.recovered++;
        }
        // An acknowledged job is never shed, even into a full queue —
        // it still occupies depth, so fresh traffic feels the
        // backpressure instead.
        if (!queue.forcePush(id)) {
            std::lock_guard<std::mutex> lock(m);
            raw->outcome.status = JobStatus::Cancelled;
            counters.cancelled++;
        }
        recoveryInfo.recovered++;
    }

    if (::rename(tmp.c_str(), cfg.journalPath.c_str()) < 0)
        fatal(strf("cannot rotate journal ", tmp, " -> ",
                   cfg.journalPath, ": ", std::strerror(errno)));
}

Admission
Supervisor::submit(const JobSpec &spec)
{
    Admission adm;
    if (drainFlag.load()) {
        adm.reason = "draining";
        flightRec.record(FlightKind::JobInvalid, 0, "draining");
        return adm;
    }
    std::string why;
    if (!spec.validate(why)) {
        adm.reason = why;
        flightRec.record(FlightKind::JobInvalid, 0, why);
        return adm;
    }

    auto rec = std::make_unique<JobRecord>();
    rec->spec = spec;
    rec->admittedUs = monotonicUs();
    const u64 id = nextJobId.fetch_add(1);
    rec->outcome.jobId = id;
    adm.jobId = id;

    JobRecord *raw = rec.get();
    {
        std::lock_guard<std::mutex> lock(m);
        jobs.emplace(id, std::move(rec));
    }
    // Record admission before the push: once the id is in the queue a
    // worker may start it, and the flight ring must show admitted
    // before started. A shed job reads "admitted then shed".
    flightRec.record(FlightKind::JobAdmitted, id,
                     strf(spec.kernel, "/", spec.config, "/", spec.mode));
    // The durability contract: the accepted record is on disk before
    // the client can observe the admission, so a daemon killed right
    // after replying still re-runs the job next generation.
    if (journal)
        journal->append(JournalEvent::Accepted, id, "", 0, &spec,
                        /*sync=*/true);
    if (!queue.tryPush(id)) {
        // Never queued: the workers are saturated and the backlog is
        // already as deep as we are willing to make a client wait.
        {
            std::lock_guard<std::mutex> lock(m);
            raw->outcome.status = JobStatus::Shed;
            counters.shed++;
        }
        terminalCv.notify_all();
        adm.reason = "overloaded";
        flightRec.record(FlightKind::JobShed, id, "queue full");
        if (journal)
            journal->append(JournalEvent::Shed, id, "queue full", 0,
                            nullptr, /*sync=*/true);
        emitSpan(TraceKind::JobAdmit, 0, id, /*shed=*/1);
        return adm;
    }
    {
        std::lock_guard<std::mutex> lock(m);
        counters.submitted++;
    }
    adm.accepted = true;
    emitSpan(TraceKind::JobAdmit, 0, id, 0);
    return adm;
}

Supervisor::JobRecord &
Supervisor::recordFor(u64 jobId) const
{
    std::lock_guard<std::mutex> lock(m);
    const auto it = jobs.find(jobId);
    if (it == jobs.end())
        fatal(strf("unknown job id ", jobId));
    return *it->second;
}

JobOutcome
Supervisor::wait(u64 jobId)
{
    JobRecord &rec = recordFor(jobId);
    std::unique_lock<std::mutex> lock(m);
    terminalCv.wait(lock, [&] { return rec.outcome.terminal(); });
    return rec.outcome;
}

JobOutcome
Supervisor::status(u64 jobId) const
{
    JobRecord &rec = recordFor(jobId);
    std::lock_guard<std::mutex> lock(m);
    return rec.outcome;
}

bool
Supervisor::cancel(u64 jobId)
{
    JobRecord &rec = recordFor(jobId);
    {
        std::unique_lock<std::mutex> lock(m);
        if (rec.outcome.terminal())
            return false;
        if (rec.outcome.status == JobStatus::Queued &&
            queue.remove(jobId)) {
            rec.outcome.status = JobStatus::Cancelled;
            counters.cancelled++;
            lock.unlock();
            if (journal)
                journal->append(JournalEvent::Cancelled, jobId,
                                "cancelled while queued", 0, nullptr,
                                /*sync=*/true);
            terminalCv.notify_all();
            return true;
        }
    }
    // Already on (or headed to) a worker: raise the cooperative stop;
    // the run dies with SimError(Cancelled) at its next commit.
    rec.stop.store(static_cast<u32>(StopCause::Cancelled));
    gateCv.notify_all();  // interrupt a backoff wait
    return true;
}

std::string
Supervisor::capsuleText(u64 jobId) const
{
    JobRecord &rec = recordFor(jobId);
    std::lock_guard<std::mutex> lock(m);
    return rec.capsule;
}

void
Supervisor::resume()
{
    {
        std::lock_guard<std::mutex> lock(m);
        paused = false;
    }
    gateCv.notify_all();
}

void
Supervisor::emitSpan(TraceKind kind, unsigned attempt, u64 jobId, i64 a1)
{
#ifndef XLOOPS_TRACE_DISABLED
    if (!metricsEnabled())
        return;
    std::lock_guard<std::mutex> lock(spanMu);
    spans.emit(monotonicUs(), TraceComp::Svc, attempt, kind,
               static_cast<i64>(jobId), a1);
#else
    (void)kind;
    (void)attempt;
    (void)jobId;
    (void)a1;
#endif
}

void
Supervisor::drain()
{
    const bool first = !drainFlag.exchange(true);
    if (first) {
        flightRec.record(FlightKind::DrainBegin, 0);
        queue.close();
        // Cancel the backlog: anything still Queued will never be
        // popped (workers skip terminal records), and clients blocked
        // in wait() learn their fate now rather than never.
        std::vector<u64> backlog;
        {
            std::lock_guard<std::mutex> lock(m);
            for (auto &[id, rec] : jobs) {
                if (rec->outcome.status == JobStatus::Queued) {
                    rec->outcome.status = JobStatus::Cancelled;
                    counters.cancelled++;
                    backlog.push_back(id);
                }
            }
            paused = false;
        }
        if (journal)
            for (const u64 id : backlog)
                journal->append(JournalEvent::Cancelled, id, "drain", 0,
                                nullptr, /*sync=*/true);
        terminalCv.notify_all();
        gateCv.notify_all();  // release the pause gate + backoff waits
    }
    {
        std::lock_guard<std::mutex> lock(m);
        if (joined)
            return;
        joined = true;
    }
    for (std::thread &t : workers)
        t.join();
    if (watchdog.joinable())
        watchdog.join();
    flightRec.record(FlightKind::DrainEnd, 0);
}

SupervisorStats
Supervisor::stats() const
{
    std::lock_guard<std::mutex> lock(m);
    SupervisorStats s = counters;
    s.cacheHits = resultCache.hits();
    s.cacheMisses = resultCache.misses();
    s.queued = queue.depth();
    s.running = 0;
    for (const auto &[id, rec] : jobs)
        if (rec->outcome.status == JobStatus::Running)
            s.running++;
    return s;
}

HealthInfo
Supervisor::health() const
{
    const SupervisorStats s = stats();
    HealthInfo h;
    h.uptimeUs = monotonicUs() - startUs;
    h.queued = s.queued;
    h.running = s.running;
    // Every accepted job that has not yet turned terminal (includes
    // the instants between accept->queue and pop->Running).
    h.inFlight = s.submitted - s.done - s.failed - s.cancelled;
    h.cacheEntries = resultCache.size();
    h.draining = drainFlag.load();
    // Degraded = alive but refusing (or about to refuse) work: the
    // queue is at its admission bound, so the next submit sheds.
    h.degraded = h.draining || s.queued >= cfg.queueDepth;
    return h;
}

void
Supervisor::publishMetrics() const
{
    MetricsRegistry &reg = metricsRegistry();
    SupervisorStats s;
    {
        // One lock hold for the whole job family: the published
        // counters describe a single consistent instant, which is
        // what makes the conservation invariant exact at any scrape
        // (tools/check_metrics.py enforces it).
        std::lock_guard<std::mutex> lock(m);
        s = counters;
    }
    // "Admitted" counts every validated submission that received an
    // id — accepted into the queue or shed at the door.
    const u64 admitted = s.submitted + s.shed;
    const u64 inFlight = s.submitted - s.done - s.failed - s.cancelled;
    reg.counter("xloops_jobs_admitted_total").publish(admitted);
    reg.counter("xloops_jobs_completed_total").publish(s.done);
    reg.counter("xloops_jobs_failed_total").publish(s.failed);
    reg.counter("xloops_jobs_shed_total").publish(s.shed);
    reg.counter("xloops_jobs_cancelled_total").publish(s.cancelled);
    // The unlabeled series totals the per-kind variants (they are
    // incremented at the same site), sharing one exposition family.
    reg.counter("xloops_retries_total").publish(s.retries);
    reg.gauge("xloops_jobs_in_flight").publish(inFlight);

    reg.gauge("xloops_queue_depth").publish(queue.depth());
    reg.gauge("xloops_queue_capacity").publish(cfg.queueDepth);
    reg.counter("xloops_cache_hits_total").publish(resultCache.hits());
    reg.counter("xloops_cache_misses_total")
        .publish(resultCache.misses());
    reg.counter("xloops_cache_evictions_total")
        .publish(resultCache.evictions());
    reg.gauge("xloops_cache_entries").publish(resultCache.size());
    reg.gauge("xloops_cache_bytes").publish(resultCache.bytes());
    reg.counter("xloops_cache_corrupt_total")
        .publish(resultCache.corruptions());
    reg.counter("xloops_jobs_recovered_total")
        .publish(recoveryInfo.recovered);
    reg.counter("xloops_jobs_resumed_from_checkpoint_total")
        .publish(s.resumed);
    reg.gauge("xloops_uptime_us").publish(monotonicUs() - startUs);
    reg.gauge("xloops_workers").publish(workers.size());
    reg.counter("xloops_flight_events_total")
        .publish(flightRec.totalRecorded());
    reg.counter("xloops_span_events_total").publish([this] {
        std::lock_guard<std::mutex> lock(spanMu);
        return spans.totalEmitted();
    }());
}

void
Supervisor::workerLoop()
{
    while (true) {
        {
            std::unique_lock<std::mutex> lock(m);
            gateCv.wait(lock,
                        [&] { return !paused || drainFlag.load(); });
        }
        u64 id = 0;
        if (!queue.pop(id))
            return;  // closed and drained
        JobRecord &rec = recordFor(id);
        {
            std::lock_guard<std::mutex> lock(m);
            if (rec.outcome.terminal())
                continue;  // cancelled while queued
            rec.outcome.status = JobStatus::Running;
            rec.outcome.queueWaitUs = monotonicUs() - rec.admittedUs;
        }
        svcMetrics().queueWaitUs.observe(rec.outcome.queueWaitUs);
        emitSpan(TraceKind::JobQueueWait, 0, id,
                 static_cast<i64>(rec.outcome.queueWaitUs));
        flightRec.record(FlightKind::JobStarted, id);
        if (journal)
            journal->append(JournalEvent::Started, id);
        runJob(rec);
    }
}

void
Supervisor::watchdogLoop()
{
    // Coarse scan: deadline enforcement needs to be *bounded*, not
    // precise — the run notices the flag at its next commit anyway.
    std::unique_lock<std::mutex> lock(m);
    while (!drainFlag.load() || !joined) {
        gateCv.wait_for(lock, std::chrono::milliseconds(20));
        if (drainFlag.load() && joined)
            return;
        const auto now = std::chrono::steady_clock::now();
        for (auto &[id, rec] : jobs) {
            if (rec->deadlineArmed && now >= rec->deadlineAt &&
                rec->stop.load() == 0) {
                rec->stop.store(static_cast<u32>(StopCause::Deadline));
                svcMetrics().deadlineKills.inc();
                flightRec.record(FlightKind::JobDeadline, id,
                                 strf("attempt ", rec->outcome.attempts));
            }
        }
    }
}

void
Supervisor::finish(JobRecord &rec, JobStatus status)
{
    std::string detail;
    {
        std::lock_guard<std::mutex> lock(m);
        rec.outcome.status = status;
        rec.deadlineArmed = false;
        detail = rec.outcome.errorKind;
        switch (status) {
          case JobStatus::Done: counters.done++; break;
          case JobStatus::Failed: counters.failed++; break;
          case JobStatus::Cancelled: counters.cancelled++; break;
          default: break;
        }
    }
    const FlightKind kind = status == JobStatus::Done
                                ? FlightKind::JobFinished
                                : status == JobStatus::Cancelled
                                      ? FlightKind::JobCancelled
                                      : FlightKind::JobFailed;
    flightRec.record(kind, rec.outcome.jobId, detail);
    if (journal) {
        const JournalEvent ev = status == JobStatus::Done
                                    ? JournalEvent::Completed
                                    : status == JobStatus::Cancelled
                                          ? JournalEvent::Cancelled
                                          : JournalEvent::Failed;
        // The terminal fsync is the other half of the contract: a
        // finished job is never re-run by the next generation.
        journal->append(ev, rec.outcome.jobId, detail,
                        rec.outcome.attempts, nullptr, /*sync=*/true);
        if (cfg.checkpointEveryInsts)
            ::unlink(ckptPathFor(rec.outcome.jobId).c_str());
    }
    emitSpan(TraceKind::JobReply, 0, rec.outcome.jobId,
             static_cast<i64>(status));
    terminalCv.notify_all();
}

void
Supervisor::runJob(JobRecord &rec)
{
    const JobSpec &spec = rec.spec;
    const Kernel &kernel = kernelByName(spec.kernel);
    const ExecMode mode = modeByName(spec.mode);
    const u64 cacheKey =
        resultCacheKey(programTextHash(kernel.source), spec);

    // A hit is served verbatim: the simulator is deterministic, so
    // this is byte-identical to what the run below would produce.
    std::string cached;
    const u64 lookupStartUs = monotonicUs();
    const bool hit = resultCache.lookup(cacheKey, cached);
    const u64 lookupUs = monotonicUs() - lookupStartUs;
    svcMetrics().cacheLookupUs.observe(lookupUs);
    emitSpan(TraceKind::JobCacheLookup, 0, rec.outcome.jobId,
             static_cast<i64>(lookupUs));
    {
        std::lock_guard<std::mutex> lock(m);
        rec.outcome.cacheLookupUs = lookupUs;
    }
    if (hit) {
        {
            std::lock_guard<std::mutex> lock(m);
            rec.outcome.cached = true;
            rec.outcome.statsJson = cached;
        }
        flightRec.record(FlightKind::JobCacheHit, rec.outcome.jobId);
        finish(rec, JobStatus::Done);
        return;
    }

    const unsigned maxRetries =
        spec.maxRetries >= 0
            ? std::min(static_cast<unsigned>(spec.maxRetries),
                       cfg.retry.maxRetries)
            : cfg.retry.maxRetries;
    const u64 deadlineMs =
        spec.deadlineMs ? spec.deadlineMs : cfg.defaultDeadlineMs;

    // The jitter stream is rooted at the job's fault seed, so a
    // replayed job sees the identical backoff sequence.
    RngPool rngPool(spec.injectSeed ? spec.injectSeed
                                    : rec.outcome.jobId);
    Rng &jitter = retryJitterStream(rngPool);

    for (unsigned attempt = 0;; attempt++) {
        // Retries re-derive the fault seed: the original schedule
        // demonstrably wedges, and a fresh (but still deterministic)
        // schedule is the legitimate way out. Only the first
        // attempt's result may enter the cache — later attempts
        // describe a different schedule than the key.
        const u64 effSeed = attempt == 0
                                ? spec.injectSeed
                                : taskSeed(spec.injectSeed, attempt);

        SysConfig sysCfg = configs::byName(spec.config);
        if (effSeed != 0) {
            sysCfg.lpsu.faults =
                FaultConfig::uniform(effSeed, spec.injectRate);
            sysCfg.lpsu.faults.archCorruptRate = spec.injectArchRate;
        }
        if (spec.haveWatchdog)
            sysCfg.lpsu.watchdogCycles = spec.watchdogCycles;

        RunOptions ropts;
        ropts.lockstep = spec.lockstep;
        ropts.stopFlag = &rec.stop;

        // Durability extras ride on attempt 0 only: a retry's
        // re-derived schedule differs from the key's run, so its
        // checkpoints would lie, and a recovered retry simply starts
        // over (at-least-once execution, exactly-once results).
        if (journal && attempt == 0) {
            if (cfg.checkpointEveryInsts) {
                ropts.checkpointEvery = cfg.checkpointEveryInsts;
                const std::string ckptPath =
                    ckptPathFor(rec.outcome.jobId);
                ropts.checkpointSink = [ckptPath](u64,
                                                  const std::string &json) {
                    // A failed checkpoint degrades resumability, never
                    // the job itself.
                    try {
                        atomicWriteFile(ckptPath, json);
                    } catch (const FatalError &err) {
                        warn(strf("checkpoint write ", ckptPath, ": ",
                                  err.what()));
                    }
                };
            }
            if (!rec.resumeCkpt.empty()) {
                ropts.restoreText = rec.resumeCkpt;
                flightRec.record(FlightKind::JobResumed,
                                 rec.outcome.jobId,
                                 strf("was job ", rec.recoveredFrom));
                std::lock_guard<std::mutex> lock(m);
                counters.resumed++;
            }
        }

        CapsuleContext capCtx;
        LoopProfiler profiler;
        RunHooks hooks;
        hooks.runOptions = &ropts;
        hooks.maxInsts = spec.maxInsts;
        hooks.capsule = &capCtx;
        hooks.profiler = &profiler;

        CapsuleRunSpec capSpec;
        capSpec.configName = spec.config;
        capSpec.modeName = spec.mode;
        capSpec.workload = spec.kernel;
        capSpec.maxInsts = spec.maxInsts;
        capSpec.lockstep = spec.lockstep;
        capSpec.injectSeed = effSeed;
        capSpec.injectRate = effSeed ? spec.injectRate : 0.0;
        capSpec.archCorruptRate = effSeed ? spec.injectArchRate : 0.0;
        capSpec.haveWatchdog = spec.haveWatchdog;
        capSpec.watchdogCycles = spec.watchdogCycles;

        {
            std::lock_guard<std::mutex> lock(m);
            rec.outcome.attempts = attempt + 1;
            rec.deadlineAt = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(deadlineMs);
            rec.deadlineArmed = true;
        }
        if (journal)
            journal->append(JournalEvent::Attempt, rec.outcome.jobId,
                            "", attempt + 1);

        const u64 attemptStartUs = monotonicUs();
        const auto closeAttempt = [&] {
            const u64 us = monotonicUs() - attemptStartUs;
            svcMetrics().simUs.observe(us);
            emitSpan(TraceKind::JobAttempt, attempt, rec.outcome.jobId,
                     static_cast<i64>(us));
            std::lock_guard<std::mutex> lock(m);
            rec.deadlineArmed = false;
            rec.outcome.simUs += us;
        };

        try {
            const KernelRun run =
                runKernel(kernel, sysCfg, mode, spec.gpBinary, hooks);
            closeAttempt();
            if (!run.passed) {
                // A checker failure is a wrong *answer*, not a wedged
                // schedule: deterministic, so never retried, and
                // there is no SimError to capsule.
                std::lock_guard<std::mutex> lock(m);
                rec.outcome.error = run.error;
                rec.outcome.errorKind = "checker";
            } else {
                std::ostringstream stats;
                writeStatsJson(stats, spec.config, spec.mode,
                               spec.kernel, run.result, profiler,
                               nullptr);
                std::lock_guard<std::mutex> lock(m);
                rec.outcome.cycles = run.result.cycles;
                rec.outcome.gppInsts = run.result.gppInsts;
                rec.outcome.statsJson = stats.str();
            }
            if (run.passed && attempt == 0)
                resultCache.insert(cacheKey, rec.outcome.statsJson);
            finish(rec, run.passed ? JobStatus::Done
                                   : JobStatus::Failed);
            return;
        } catch (const SimError &err) {
            closeAttempt();
            const FailureClass cls = classifySimError(err.kind());
            const bool stopped = rec.stop.load() != 0;
            if (cls == FailureClass::Retryable && !stopped &&
                attempt < maxRetries && !drainFlag.load()) {
                const u64 waitMs =
                    backoffMs(cfg.retry, attempt, jitter);
                retryCounterFor(simErrorKindName(err.kind())).inc();
                svcMetrics().backoffs.inc();
                svcMetrics().backoffMsSlept.inc(waitMs);
                flightRec.record(
                    FlightKind::JobRetried, rec.outcome.jobId,
                    strf(simErrorKindName(err.kind()), " attempt ",
                         attempt, " backoff ", waitMs, "ms"));
                if (journal)
                    journal->append(JournalEvent::Backoff,
                                    rec.outcome.jobId,
                                    strf(waitMs, "ms"), attempt + 1);
                const u64 backoffStartUs = monotonicUs();
                bool interrupted;
                {
                    std::unique_lock<std::mutex> lock(m);
                    counters.retries++;
                    interrupted = gateCv.wait_for(
                        lock, std::chrono::milliseconds(waitMs), [&] {
                            return drainFlag.load() ||
                                   rec.stop.load() != 0;
                        });
                }
                emitSpan(TraceKind::JobBackoff, attempt,
                         rec.outcome.jobId,
                         static_cast<i64>(monotonicUs() -
                                          backoffStartUs));
                if (!interrupted)
                    continue;  // backoff elapsed: next attempt
                // Drain or cancel won the backoff wait: finalize with
                // the failure we already have (capsuled below).
            }

            // Crash isolation: the failure becomes a self-contained
            // replay capsule artifact, never a dead worker.
            std::string capsulePath;
            if (capCtx.valid) {
                capsulePath =
                    strf(cfg.artifactDir, "/job-", rec.outcome.jobId,
                         ".capsule.json");
                try {
                    writeCapsule(capsulePath, capSpec, capCtx, err,
                                 flightRec.dumpJson(/*pretty=*/false));
                } catch (const FatalError &werr) {
                    warn(strf("job ", rec.outcome.jobId,
                              ": capsule write failed: ",
                              werr.what()));
                    capsulePath.clear();
                }
            }
            {
                std::lock_guard<std::mutex> lock(m);
                rec.outcome.error = err.what();
                rec.outcome.errorKind =
                    simErrorKindName(err.kind());
                if (!capsulePath.empty()) {
                    rec.outcome.capsulePath = capsulePath;
                    rec.capsule = readFileText(capsulePath);
                }
            }
            finish(rec, err.kind() == SimErrorKind::Cancelled
                            ? JobStatus::Cancelled
                            : JobStatus::Failed);
            return;
        } catch (const std::exception &err) {
            // FatalError / PanicError: a bug or bad input slipped
            // past validate(). Isolate it to this job.
            closeAttempt();
            {
                std::lock_guard<std::mutex> lock(m);
                rec.outcome.error = err.what();
                rec.outcome.errorKind = "fatal";
            }
            finish(rec, JobStatus::Failed);
            return;
        }
    }
}

} // namespace xloops
