#include "service/supervisor.h"

#include <fstream>
#include <sstream>

#include "common/fault.h"
#include "common/log.h"
#include "common/loop_profile.h"
#include "common/pool.h"
#include "common/sim_error.h"
#include "kernels/kernel.h"
#include "system/capsule.h"
#include "system/config.h"
#include "system/report.h"

namespace xloops {

namespace {

/** Hash of the program text a job executes (the kernel's assembly
 *  source; spec.gpBinary is a separate key component since the
 *  derived GP-ISA image is a deterministic function of the source). */
u64
programTextHash(const std::string &source)
{
    u64 h = 0x584c4f4f50530931ull;  // "XLOOPS\t1"
    for (const char c : source)
        h = mix64(h ^ static_cast<u8>(c));
    return mix64(h);
}

ExecMode
modeByName(const std::string &mode)
{
    if (mode == "T")
        return ExecMode::Traditional;
    if (mode == "A")
        return ExecMode::Adaptive;
    return ExecMode::Specialized;
}

std::string
readFileText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

Supervisor::Supervisor(const SupervisorConfig &config)
    : cfg(config), resultCache(config.cacheEntries),
      queue(config.queueDepth), paused(config.startPaused)
{
    unsigned n = cfg.workers;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 2;
    }
    workers.reserve(n);
    for (unsigned i = 0; i < n; i++)
        workers.emplace_back([this] { workerLoop(); });
    watchdog = std::thread([this] { watchdogLoop(); });
}

Supervisor::~Supervisor()
{
    drain();
}

Admission
Supervisor::submit(const JobSpec &spec)
{
    Admission adm;
    if (drainFlag.load()) {
        adm.reason = "draining";
        return adm;
    }
    std::string why;
    if (!spec.validate(why)) {
        adm.reason = why;
        return adm;
    }

    auto rec = std::make_unique<JobRecord>();
    rec->spec = spec;
    const u64 id = nextJobId.fetch_add(1);
    rec->outcome.jobId = id;
    adm.jobId = id;

    JobRecord *raw = rec.get();
    {
        std::lock_guard<std::mutex> lock(m);
        jobs.emplace(id, std::move(rec));
    }
    if (!queue.tryPush(id)) {
        // Never queued: the workers are saturated and the backlog is
        // already as deep as we are willing to make a client wait.
        {
            std::lock_guard<std::mutex> lock(m);
            raw->outcome.status = JobStatus::Shed;
            counters.shed++;
        }
        terminalCv.notify_all();
        adm.reason = "overloaded";
        return adm;
    }
    {
        std::lock_guard<std::mutex> lock(m);
        counters.submitted++;
    }
    adm.accepted = true;
    return adm;
}

Supervisor::JobRecord &
Supervisor::recordFor(u64 jobId) const
{
    std::lock_guard<std::mutex> lock(m);
    const auto it = jobs.find(jobId);
    if (it == jobs.end())
        fatal(strf("unknown job id ", jobId));
    return *it->second;
}

JobOutcome
Supervisor::wait(u64 jobId)
{
    JobRecord &rec = recordFor(jobId);
    std::unique_lock<std::mutex> lock(m);
    terminalCv.wait(lock, [&] { return rec.outcome.terminal(); });
    return rec.outcome;
}

JobOutcome
Supervisor::status(u64 jobId) const
{
    JobRecord &rec = recordFor(jobId);
    std::lock_guard<std::mutex> lock(m);
    return rec.outcome;
}

bool
Supervisor::cancel(u64 jobId)
{
    JobRecord &rec = recordFor(jobId);
    {
        std::unique_lock<std::mutex> lock(m);
        if (rec.outcome.terminal())
            return false;
        if (rec.outcome.status == JobStatus::Queued &&
            queue.remove(jobId)) {
            rec.outcome.status = JobStatus::Cancelled;
            counters.cancelled++;
            lock.unlock();
            terminalCv.notify_all();
            return true;
        }
    }
    // Already on (or headed to) a worker: raise the cooperative stop;
    // the run dies with SimError(Cancelled) at its next commit.
    rec.stop.store(static_cast<u32>(StopCause::Cancelled));
    gateCv.notify_all();  // interrupt a backoff wait
    return true;
}

std::string
Supervisor::capsuleText(u64 jobId) const
{
    JobRecord &rec = recordFor(jobId);
    std::lock_guard<std::mutex> lock(m);
    return rec.capsule;
}

void
Supervisor::resume()
{
    {
        std::lock_guard<std::mutex> lock(m);
        paused = false;
    }
    gateCv.notify_all();
}

void
Supervisor::drain()
{
    const bool first = !drainFlag.exchange(true);
    if (first) {
        queue.close();
        // Cancel the backlog: anything still Queued will never be
        // popped (workers skip terminal records), and clients blocked
        // in wait() learn their fate now rather than never.
        {
            std::lock_guard<std::mutex> lock(m);
            for (auto &[id, rec] : jobs) {
                if (rec->outcome.status == JobStatus::Queued) {
                    rec->outcome.status = JobStatus::Cancelled;
                    counters.cancelled++;
                }
            }
            paused = false;
        }
        terminalCv.notify_all();
        gateCv.notify_all();  // release the pause gate + backoff waits
    }
    {
        std::lock_guard<std::mutex> lock(m);
        if (joined)
            return;
        joined = true;
    }
    for (std::thread &t : workers)
        t.join();
    if (watchdog.joinable())
        watchdog.join();
}

SupervisorStats
Supervisor::stats() const
{
    std::lock_guard<std::mutex> lock(m);
    SupervisorStats s = counters;
    s.cacheHits = resultCache.hits();
    s.cacheMisses = resultCache.misses();
    s.queued = queue.depth();
    s.running = 0;
    for (const auto &[id, rec] : jobs)
        if (rec->outcome.status == JobStatus::Running)
            s.running++;
    return s;
}

void
Supervisor::workerLoop()
{
    while (true) {
        {
            std::unique_lock<std::mutex> lock(m);
            gateCv.wait(lock,
                        [&] { return !paused || drainFlag.load(); });
        }
        u64 id = 0;
        if (!queue.pop(id))
            return;  // closed and drained
        JobRecord &rec = recordFor(id);
        {
            std::lock_guard<std::mutex> lock(m);
            if (rec.outcome.terminal())
                continue;  // cancelled while queued
            rec.outcome.status = JobStatus::Running;
        }
        runJob(rec);
    }
}

void
Supervisor::watchdogLoop()
{
    // Coarse scan: deadline enforcement needs to be *bounded*, not
    // precise — the run notices the flag at its next commit anyway.
    std::unique_lock<std::mutex> lock(m);
    while (!drainFlag.load() || !joined) {
        gateCv.wait_for(lock, std::chrono::milliseconds(20));
        if (drainFlag.load() && joined)
            return;
        const auto now = std::chrono::steady_clock::now();
        for (auto &[id, rec] : jobs) {
            if (rec->deadlineArmed && now >= rec->deadlineAt &&
                rec->stop.load() == 0) {
                rec->stop.store(static_cast<u32>(StopCause::Deadline));
            }
        }
    }
}

void
Supervisor::finish(JobRecord &rec, JobStatus status)
{
    {
        std::lock_guard<std::mutex> lock(m);
        rec.outcome.status = status;
        rec.deadlineArmed = false;
        switch (status) {
          case JobStatus::Done: counters.done++; break;
          case JobStatus::Failed: counters.failed++; break;
          case JobStatus::Cancelled: counters.cancelled++; break;
          default: break;
        }
    }
    terminalCv.notify_all();
}

void
Supervisor::runJob(JobRecord &rec)
{
    const JobSpec &spec = rec.spec;
    const Kernel &kernel = kernelByName(spec.kernel);
    const ExecMode mode = modeByName(spec.mode);
    const u64 cacheKey =
        resultCacheKey(programTextHash(kernel.source), spec);

    // A hit is served verbatim: the simulator is deterministic, so
    // this is byte-identical to what the run below would produce.
    std::string cached;
    if (resultCache.lookup(cacheKey, cached)) {
        {
            std::lock_guard<std::mutex> lock(m);
            rec.outcome.cached = true;
            rec.outcome.statsJson = cached;
        }
        finish(rec, JobStatus::Done);
        return;
    }

    const unsigned maxRetries =
        spec.maxRetries >= 0
            ? std::min(static_cast<unsigned>(spec.maxRetries),
                       cfg.retry.maxRetries)
            : cfg.retry.maxRetries;
    const u64 deadlineMs =
        spec.deadlineMs ? spec.deadlineMs : cfg.defaultDeadlineMs;

    // The jitter stream is rooted at the job's fault seed, so a
    // replayed job sees the identical backoff sequence.
    RngPool rngPool(spec.injectSeed ? spec.injectSeed
                                    : rec.outcome.jobId);
    Rng &jitter = retryJitterStream(rngPool);

    for (unsigned attempt = 0;; attempt++) {
        // Retries re-derive the fault seed: the original schedule
        // demonstrably wedges, and a fresh (but still deterministic)
        // schedule is the legitimate way out. Only the first
        // attempt's result may enter the cache — later attempts
        // describe a different schedule than the key.
        const u64 effSeed = attempt == 0
                                ? spec.injectSeed
                                : taskSeed(spec.injectSeed, attempt);

        SysConfig sysCfg = configs::byName(spec.config);
        if (effSeed != 0) {
            sysCfg.lpsu.faults =
                FaultConfig::uniform(effSeed, spec.injectRate);
            sysCfg.lpsu.faults.archCorruptRate = spec.injectArchRate;
        }
        if (spec.haveWatchdog)
            sysCfg.lpsu.watchdogCycles = spec.watchdogCycles;

        RunOptions ropts;
        ropts.lockstep = spec.lockstep;
        ropts.stopFlag = &rec.stop;

        CapsuleContext capCtx;
        LoopProfiler profiler;
        RunHooks hooks;
        hooks.runOptions = &ropts;
        hooks.maxInsts = spec.maxInsts;
        hooks.capsule = &capCtx;
        hooks.profiler = &profiler;

        CapsuleRunSpec capSpec;
        capSpec.configName = spec.config;
        capSpec.modeName = spec.mode;
        capSpec.workload = spec.kernel;
        capSpec.maxInsts = spec.maxInsts;
        capSpec.lockstep = spec.lockstep;
        capSpec.injectSeed = effSeed;
        capSpec.injectRate = effSeed ? spec.injectRate : 0.0;
        capSpec.archCorruptRate = effSeed ? spec.injectArchRate : 0.0;
        capSpec.haveWatchdog = spec.haveWatchdog;
        capSpec.watchdogCycles = spec.watchdogCycles;

        {
            std::lock_guard<std::mutex> lock(m);
            rec.outcome.attempts = attempt + 1;
            rec.deadlineAt = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(deadlineMs);
            rec.deadlineArmed = true;
        }

        try {
            const KernelRun run =
                runKernel(kernel, sysCfg, mode, spec.gpBinary, hooks);
            {
                std::lock_guard<std::mutex> lock(m);
                rec.deadlineArmed = false;
            }
            if (!run.passed) {
                // A checker failure is a wrong *answer*, not a wedged
                // schedule: deterministic, so never retried, and
                // there is no SimError to capsule.
                std::lock_guard<std::mutex> lock(m);
                rec.outcome.error = run.error;
                rec.outcome.errorKind = "checker";
            } else {
                std::ostringstream stats;
                writeStatsJson(stats, spec.config, spec.mode,
                               spec.kernel, run.result, profiler,
                               nullptr);
                std::lock_guard<std::mutex> lock(m);
                rec.outcome.cycles = run.result.cycles;
                rec.outcome.gppInsts = run.result.gppInsts;
                rec.outcome.statsJson = stats.str();
            }
            if (run.passed && attempt == 0)
                resultCache.insert(cacheKey, rec.outcome.statsJson);
            finish(rec, run.passed ? JobStatus::Done
                                   : JobStatus::Failed);
            return;
        } catch (const SimError &err) {
            {
                std::lock_guard<std::mutex> lock(m);
                rec.deadlineArmed = false;
            }
            const FailureClass cls = classifySimError(err.kind());
            const bool stopped = rec.stop.load() != 0;
            if (cls == FailureClass::Retryable && !stopped &&
                attempt < maxRetries && !drainFlag.load()) {
                const u64 waitMs =
                    backoffMs(cfg.retry, attempt, jitter);
                std::unique_lock<std::mutex> lock(m);
                counters.retries++;
                const bool interrupted = gateCv.wait_for(
                    lock, std::chrono::milliseconds(waitMs), [&] {
                        return drainFlag.load() ||
                               rec.stop.load() != 0;
                    });
                if (!interrupted)
                    continue;  // backoff elapsed: next attempt
                // Drain or cancel won the backoff wait: finalize with
                // the failure we already have (capsuled below).
            }

            // Crash isolation: the failure becomes a self-contained
            // replay capsule artifact, never a dead worker.
            std::string capsulePath;
            if (capCtx.valid) {
                capsulePath =
                    strf(cfg.artifactDir, "/job-", rec.outcome.jobId,
                         ".capsule.json");
                try {
                    writeCapsule(capsulePath, capSpec, capCtx, err);
                } catch (const FatalError &werr) {
                    warn(strf("job ", rec.outcome.jobId,
                              ": capsule write failed: ",
                              werr.what()));
                    capsulePath.clear();
                }
            }
            {
                std::lock_guard<std::mutex> lock(m);
                rec.outcome.error = err.what();
                rec.outcome.errorKind =
                    simErrorKindName(err.kind());
                if (!capsulePath.empty()) {
                    rec.outcome.capsulePath = capsulePath;
                    rec.capsule = readFileText(capsulePath);
                }
            }
            finish(rec, err.kind() == SimErrorKind::Cancelled
                            ? JobStatus::Cancelled
                            : JobStatus::Failed);
            return;
        } catch (const std::exception &err) {
            // FatalError / PanicError: a bug or bad input slipped
            // past validate(). Isolate it to this job.
            {
                std::lock_guard<std::mutex> lock(m);
                rec.deadlineArmed = false;
                rec.outcome.error = err.what();
                rec.outcome.errorKind = "fatal";
            }
            finish(rec, JobStatus::Failed);
            return;
        }
    }
}

} // namespace xloops
