#include "service/job.h"

#include "common/json.h"
#include "common/log.h"
#include "common/serialize.h"
#include "kernels/kernel.h"
#include "system/config.h"

namespace xloops {

bool
JobSpec::validate(std::string &why) const
{
    if (kernel.empty()) {
        why = "job has no kernel";
        return false;
    }
    try {
        kernelByName(kernel);
        configs::byName(config);
    } catch (const FatalError &err) {
        why = err.what();
        return false;
    }
    if (mode != "T" && mode != "S" && mode != "A") {
        why = "mode must be T, S, or A";
        return false;
    }
    if (gpBinary && mode != "T") {
        why = "the GP-ISA binary only runs in mode T";
        return false;
    }
    if (mode != "T" && !configs::byName(config).hasLpsu) {
        why = "mode " + mode + " needs an LPSU (+x config)";
        return false;
    }
    if (injectArchRate > 0.0 && injectSeed == 0) {
        why = "inject_arch_rate needs a nonzero inject_seed";
        return false;
    }
    if (maxInsts == 0) {
        why = "max_insts must be nonzero";
        return false;
    }
    return true;
}

void
JobSpec::toJson(JsonWriter &w) const
{
    w.field("kernel", kernel);
    w.field("config", config);
    w.field("mode", mode);
    w.field("gp_binary", gpBinary);
    w.field("max_insts", maxInsts);
    w.field("deadline_ms", deadlineMs);
    w.field("inject_seed", injectSeed);
    // Rates round-trip bit-exactly: they feed the fault RNG schedule
    // and the result-cache key, where "close" is not "equal".
    w.field("inject_rate_bits", doubleBits(injectRate));
    w.field("inject_arch_rate_bits", doubleBits(injectArchRate));
    w.field("have_watchdog", haveWatchdog);
    w.field("watchdog_cycles", watchdogCycles);
    w.field("lockstep", lockstep);
    w.field("max_retries", maxRetries);
}

JobSpec
jobSpecFromJson(const JsonValue &v)
{
    JobSpec s;
    s.kernel = v.at("kernel").asString();
    if (v.has("config"))
        s.config = v.at("config").asString();
    if (v.has("mode"))
        s.mode = v.at("mode").asString();
    if (v.has("gp_binary"))
        s.gpBinary = v.at("gp_binary").asBool();
    s.maxInsts = v.getU64("max_insts", s.maxInsts);
    s.deadlineMs = v.getU64("deadline_ms", 0);
    s.injectSeed = v.getU64("inject_seed", 0);
    if (v.has("inject_rate_bits"))
        s.injectRate = doubleFromBits(v.at("inject_rate_bits").asString());
    if (v.has("inject_arch_rate_bits"))
        s.injectArchRate =
            doubleFromBits(v.at("inject_arch_rate_bits").asString());
    if (v.has("have_watchdog"))
        s.haveWatchdog = v.at("have_watchdog").asBool();
    s.watchdogCycles = v.getU64("watchdog_cycles", 0);
    if (v.has("lockstep"))
        s.lockstep = v.at("lockstep").asBool();
    if (v.has("max_retries"))
        s.maxRetries = static_cast<int>(v.at("max_retries").asI64());
    return s;
}

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Queued: return "queued";
      case JobStatus::Running: return "running";
      case JobStatus::Done: return "done";
      case JobStatus::Failed: return "failed";
      case JobStatus::Shed: return "overloaded";
      case JobStatus::Cancelled: return "cancelled";
    }
    return "unknown";
}

} // namespace xloops
