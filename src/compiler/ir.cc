#include "compiler/ir.h"

namespace xloops {

Stmt
assign(const std::string &name, ExprPtr value)
{
    Stmt s;
    s.kind = Stmt::Kind::AssignScalar;
    s.name = name;
    s.value = std::move(value);
    return s;
}

Stmt
store(const std::string &array, ExprPtr index, ExprPtr value)
{
    Stmt s;
    s.kind = Stmt::Kind::StoreArray;
    s.array = array;
    s.index = std::move(index);
    s.value = std::move(value);
    return s;
}

Stmt
ifThen(ExprPtr cond, std::vector<Stmt> then_body,
       std::vector<Stmt> else_body)
{
    Stmt s;
    s.kind = Stmt::Kind::If;
    s.cond = std::move(cond);
    s.thenBody = std::move(then_body);
    s.elseBody = std::move(else_body);
    return s;
}

Stmt
nested(Loop loop)
{
    Stmt s;
    s.kind = Stmt::Kind::Nested;
    s.nested.push_back(std::move(loop));
    return s;
}

Stmt
exitWhen(ExprPtr cond)
{
    Stmt s;
    s.kind = Stmt::Kind::ExitWhen;
    s.cond = std::move(cond);
    return s;
}

bool
hasExitWhen(const std::vector<Stmt> &body)
{
    for (const Stmt &s : body) {
        if (s.kind == Stmt::Kind::ExitWhen)
            return true;
        if (s.kind == Stmt::Kind::If &&
            (hasExitWhen(s.thenBody) || hasExitWhen(s.elseBody)))
            return true;
    }
    return false;
}

namespace {

void
rwWalk(const std::vector<Stmt> &body, RwSets &rw)
{
    for (const Stmt &s : body) {
        auto readExpr = [&rw](const ExprPtr &e) {
            if (!e)
                return;
            std::set<std::string> vars;
            e->collectVars(vars);
            for (const auto &v : vars) {
                rw.readAnywhere.insert(v);
                if (!rw.written.count(v))
                    rw.readFirst.insert(v);
            }
        };
        switch (s.kind) {
          case Stmt::Kind::AssignScalar:
            readExpr(s.value);
            rw.written.insert(s.name);
            break;
          case Stmt::Kind::StoreArray:
            readExpr(s.index);
            readExpr(s.value);
            break;
          case Stmt::Kind::If:
            readExpr(s.cond);
            // Conservative: both branches see the same prior state;
            // writes in either branch count as writes.
            rwWalk(s.thenBody, rw);
            rwWalk(s.elseBody, rw);
            break;
          case Stmt::Kind::Nested: {
            const Loop &loop = s.nested.front();
            readExpr(loop.lower);
            readExpr(loop.upper);
            rw.written.insert(loop.iv);
            rwWalk(loop.body, rw);
            break;
          }
          case Stmt::Kind::ExitWhen:
            readExpr(s.cond);
            break;
        }
    }
}

void
arrayWalk(const std::vector<Stmt> &body, bool writes,
          std::vector<std::pair<std::string, ExprPtr>> &out)
{
    for (const Stmt &s : body) {
        auto loadsOf = [&out, writes](const ExprPtr &e) {
            if (!writes && e)
                e->collectLoads(out);
        };
        switch (s.kind) {
          case Stmt::Kind::AssignScalar:
            loadsOf(s.value);
            break;
          case Stmt::Kind::StoreArray:
            if (writes)
                out.emplace_back(s.array, s.index);
            loadsOf(s.index);
            loadsOf(s.value);
            break;
          case Stmt::Kind::If:
            loadsOf(s.cond);
            arrayWalk(s.thenBody, writes, out);
            arrayWalk(s.elseBody, writes, out);
            break;
          case Stmt::Kind::Nested:
            // Nested loops are analyzed at their own level; treat as
            // opaque here (the caller's ZIV/SIV tests cannot reason
            // about the inner iv).
            arrayWalk(s.nested.front().body, writes, out);
            break;
          case Stmt::Kind::ExitWhen:
            loadsOf(s.cond);
            break;
        }
    }
}

} // namespace

RwSets
scalarRw(const std::vector<Stmt> &body)
{
    RwSets rw;
    rwWalk(body, rw);
    return rw;
}

void
collectArrayWrites(const std::vector<Stmt> &body,
                   std::vector<std::pair<std::string, ExprPtr>> &out)
{
    arrayWalk(body, true, out);
}

void
collectArrayReads(const std::vector<Stmt> &body,
                  std::vector<std::pair<std::string, ExprPtr>> &out)
{
    arrayWalk(body, false, out);
}

} // namespace xloops
