#include "compiler/pattern_select.h"

#include "common/log.h"

namespace xloops {

Op
LoopSelection::opcode() const
{
    XL_ASSERT(!serial, "serial loop has no xloop opcode");
    if (dataDepExit) {
        XL_ASSERT(!dynamicBound, "db and de cannot combine");
        switch (pattern) {
          case LoopPattern::OM: return Op::XLOOP_OM_DE;
          case LoopPattern::ORM: return Op::XLOOP_ORM_DE;
          default:
            panic("data-dependent exit requires a memory-ordered "
                  "pattern");
        }
    }
    switch (pattern) {
      case LoopPattern::UC:
        return dynamicBound ? Op::XLOOP_UC_DB : Op::XLOOP_UC;
      case LoopPattern::OR:
        return dynamicBound ? Op::XLOOP_OR_DB : Op::XLOOP_OR;
      case LoopPattern::OM:
        return dynamicBound ? Op::XLOOP_OM_DB : Op::XLOOP_OM;
      case LoopPattern::ORM:
        return dynamicBound ? Op::XLOOP_ORM_DB : Op::XLOOP_ORM;
      case LoopPattern::UA:
        return dynamicBound ? Op::XLOOP_UA_DB : Op::XLOOP_UA;
    }
    panic("unknown pattern");
}

std::string
LoopSelection::describe() const
{
    if (serial)
        return "serial";
    std::string name = patternName(pattern);
    if (dynamicBound)
        name += ".db";
    if (dataDepExit)
        name += ".de";
    if (speculative)
        name += "?";
    return name;
}

LoopSelection
selectPattern(const Loop &loop)
{
    LoopSelection sel;
    sel.dynamicBound = boundUpdateAnalysis(loop);
    sel.dataDepExit = hasExitWhen(loop.body);
    if (sel.dataDepExit && loop.pragma != Pragma::Ordered &&
        loop.pragma != Pragma::Auto && loop.pragma != Pragma::None) {
        fatal("data-dependent exits require an ordered (or serial) "
              "loop: speculative cancellation needs buffered stores");
    }

    switch (loop.pragma) {
      case Pragma::None:
        sel.serial = true;
        return sel;
      case Pragma::Unordered:
        sel.pattern = LoopPattern::UC;
        return sel;
      case Pragma::Atomic:
        sel.pattern = LoopPattern::UA;
        return sel;
      case Pragma::Ordered:
      case Pragma::Auto:
        break;
    }
    sel.autoSelected = loop.pragma == Pragma::Auto;

    // ordered / auto: the programmer need not say how the dependence
    // is communicated; the compiler works it out.
    const RegDepResult regs = regDepAnalysis(loop);
    const MemDepResult mems = memDepAnalysis(loop);
    sel.cirs = regs.cirs;
    sel.carriedMemDep = mems.hasCarriedDep;
    bool provenDistance = false;
    for (const MemDepPair &p : mems.pairs) {
        if (p.verdict == MemDepVerdict::AssumedCarried)
            sel.inconclusive = true;
        if (p.verdict == MemDepVerdict::CarriedDistance)
            provenDistance = true;
    }
    const bool viaRegs = !regs.cirs.empty();
    if (viaRegs && mems.hasCarriedDep)
        sel.pattern = LoopPattern::ORM;
    else if (viaRegs)
        sel.pattern = LoopPattern::OR;
    else if (mems.hasCarriedDep)
        sel.pattern = LoopPattern::OM;
    else
        sel.pattern = LoopPattern::UC;  // least restrictive encoding

    // Speculative DOACROSS: an auto loop whose memory ordering rests
    // only on inconclusive tests (no proven carried distance) runs
    // speculatively — the LPSU's dynamic store-address ordering is
    // the conflict detection the static analysis could not provide.
    if (sel.autoSelected && mems.hasCarriedDep && sel.inconclusive &&
        !provenDistance) {
        sel.speculative = true;
    }

    // An auto loop with a dynamic bound must commit the bound update
    // in order (an unordered .db is worklist semantics): promote uc
    // to om so the LMU samples the bound at in-order commit.
    if (sel.autoSelected && sel.dynamicBound &&
        sel.pattern == LoopPattern::UC) {
        sel.pattern = LoopPattern::OM;
    }

    if (sel.dataDepExit) {
        // *.de needs memory ordering (cancellation = discard LSQs).
        if (sel.pattern == LoopPattern::ORM ||
            sel.pattern == LoopPattern::OR) {
            sel.pattern = LoopPattern::ORM;
        } else {
            sel.pattern = LoopPattern::OM;
        }
    }
    return sel;
}

} // namespace xloops
