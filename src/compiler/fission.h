/**
 * @file
 * Loop fission prepass: split a mixed-pattern loop body into
 * independent statement groups so each group can pick its own xloop
 * encoding. A body that mixes, say, an independent map with an
 * accumulation would otherwise be forced into the most restrictive
 * pattern the union demands (xloop.or for the whole loop); after
 * fission the map half runs as xloop.uc and only the accumulation
 * pays for ordering.
 *
 * Legality is intentionally conservative: statements are grouped with
 * union-find over shared entities (scalars and arrays) where at least
 * one side writes — groups then touch no common written state, so
 * distributing the loop preserves serial semantics regardless of
 * emission order. Loops with data-dependent exits, nested loops,
 * dynamic bounds, or induction-variable writes are never split.
 */

#ifndef XLOOPS_COMPILER_FISSION_H
#define XLOOPS_COMPILER_FISSION_H

#include "compiler/ir.h"

namespace xloops {

/**
 * Try to split @p loop into independent single-pattern loops.
 *
 * Returns the replacement loops (two or more, same iteration space
 * and pragma, statements partitioned in original order) when fission
 * is both legal and profitable — i.e. at least one fragment selects a
 * different encoding than the unsplit loop would. Returns an empty
 * vector when the loop should be left alone.
 */
std::vector<Loop> fissionLoop(const Loop &loop);

/**
 * Recursive prepass: apply fissionLoop to every loop reachable from
 * @p topLevel (including loops nested inside ifs and other loops),
 * splicing replacements in place.
 */
void applyFission(std::vector<Stmt> &topLevel);

} // namespace xloops

#endif // XLOOPS_COMPILER_FISSION_H
