#include "compiler/dep_analysis.h"

namespace xloops {

RegDepResult
regDepAnalysis(const Loop &loop)
{
    RegDepResult out;
    const RwSets rw = scalarRw(loop.body);
    for (const auto &name : rw.readFirst) {
        if (!rw.written.count(name))
            continue;
        if (name == loop.iv)
            continue;
        if (loop.upper->kind == Expr::Kind::Var &&
            loop.upper->var == name) {
            continue;  // bound updates are the *.db pattern, not a CIR
        }
        out.cirs.push_back(name);
    }
    return out;
}

namespace {

/**
 * Classify one (write, access) subscript pair with respect to @p iv.
 * Implements the ZIV and strong-SIV tests; everything else is
 * conservatively assumed carried (the MIV fallback).
 */
MemDepPair
testPair(const std::string &array, const ExprPtr &w, const ExprPtr &r,
         const std::string &iv)
{
    MemDepPair pair;
    pair.array = array;

    const auto aw = affineIn(w, iv);
    const auto ar = affineIn(r, iv);
    if (!aw || !ar) {
        pair.verdict = MemDepVerdict::AssumedCarried;
        return pair;
    }

    // ZIV: neither subscript involves the induction variable.
    if (aw->coeff == 0 && ar->coeff == 0) {
        if (aw->constOffset && ar->constOffset) {
            pair.verdict = aw->constValue == ar->constValue
                               ? MemDepVerdict::AssumedCarried  // same cell
                               : MemDepVerdict::Independent;
        } else {
            pair.verdict = MemDepVerdict::AssumedCarried;
        }
        return pair;
    }

    // Strong SIV: both sides a*iv + c with the same coefficient. The
    // subtraction is done in 64 bits: overflow-adjacent offsets (e.g.
    // +2^30 against -2^30) must not wrap into a bogus small distance
    // — or into signed-overflow UB (see DataDepEdge.OverflowAdjacent*
    // in tests/test_dde.cc).
    if (aw->coeff == ar->coeff && aw->coeff != 0 && aw->constOffset &&
        ar->constOffset) {
        const i64 diff = static_cast<i64>(ar->constValue) -
                         static_cast<i64>(aw->constValue);
        if (diff % aw->coeff != 0) {
            pair.verdict = MemDepVerdict::Independent;
        } else if (diff == 0) {
            pair.verdict = MemDepVerdict::IntraIteration;
        } else {
            const i64 dist = diff / aw->coeff;
            pair.verdict = MemDepVerdict::CarriedDistance;
            pair.distance = static_cast<i32>(dist);
        }
        return pair;
    }

    // Weak SIV / MIV / symbolic offsets: conservative.
    pair.verdict = MemDepVerdict::AssumedCarried;
    return pair;
}

} // namespace

MemDepResult
memDepAnalysis(const Loop &loop)
{
    MemDepResult out;
    std::vector<std::pair<std::string, ExprPtr>> writes;
    std::vector<std::pair<std::string, ExprPtr>> reads;
    collectArrayWrites(loop.body, writes);
    collectArrayReads(loop.body, reads);

    auto consider = [&](const std::string &array, const ExprPtr &w,
                        const ExprPtr &other) {
        MemDepPair pair = testPair(array, w, other, loop.iv);
        if (pair.verdict == MemDepVerdict::CarriedDistance ||
            pair.verdict == MemDepVerdict::AssumedCarried)
            out.hasCarriedDep = true;
        out.pairs.push_back(std::move(pair));
    };

    for (size_t i = 0; i < writes.size(); i++) {
        const auto &[warr, widx] = writes[i];
        for (const auto &[rarr, ridx] : reads)
            if (warr == rarr)
                consider(warr, widx, ridx);
        // Output dependences, including a write against itself in a
        // later iteration (irregular subscripts alias across
        // iterations unless the subscript is injective in the iv).
        for (size_t j = i; j < writes.size(); j++) {
            const auto &[w2arr, w2idx] = writes[j];
            if (warr == w2arr)
                consider(warr, widx, w2idx);
        }
    }
    return out;
}

bool
boundUpdateAnalysis(const Loop &loop)
{
    if (loop.upper->kind != Expr::Kind::Var)
        return false;
    const RwSets rw = scalarRw(loop.body);
    return rw.written.count(loop.upper->var) != 0;
}

} // namespace xloops
