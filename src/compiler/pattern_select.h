/**
 * @file
 * xloop pattern selection (paper Section II-B): combine the pragma
 * annotation with register/memory dependence analysis to choose the
 * least restrictive xloop encoding:
 *
 *   unordered            -> xloop.uc
 *   atomic               -> xloop.ua
 *   ordered + reg only   -> xloop.or
 *   ordered + mem only   -> xloop.om
 *   ordered + both       -> xloop.orm
 *   ordered + neither    -> xloop.uc  (least restrictive)
 *   bound updated        -> *.db variant
 *   no pragma            -> serial loop (no xloop)
 */

#ifndef XLOOPS_COMPILER_PATTERN_SELECT_H
#define XLOOPS_COMPILER_PATTERN_SELECT_H

#include "compiler/dep_analysis.h"
#include "isa/opcodes.h"

namespace xloops {

/** Complete analysis verdict for one loop. */
struct LoopSelection
{
    bool serial = false;        ///< no xloop (Pragma::None)
    LoopPattern pattern = LoopPattern::UC;
    bool dynamicBound = false;
    bool dataDepExit = false;   ///< ExitWhen present: lowers to *.de
    std::vector<std::string> cirs;
    bool carriedMemDep = false;

    /** The xloop opcode implementing this selection. */
    Op opcode() const;
};

/** Run all analysis passes and select the encoding for @p loop. */
LoopSelection selectPattern(const Loop &loop);

} // namespace xloops

#endif // XLOOPS_COMPILER_PATTERN_SELECT_H
