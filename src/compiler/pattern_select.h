/**
 * @file
 * xloop pattern selection (paper Section II-B): combine the pragma
 * annotation with register/memory dependence analysis to choose the
 * least restrictive xloop encoding:
 *
 *   unordered            -> xloop.uc
 *   atomic               -> xloop.ua
 *   ordered + reg only   -> xloop.or
 *   ordered + mem only   -> xloop.om
 *   ordered + both       -> xloop.orm
 *   ordered + neither    -> xloop.uc  (least restrictive)
 *   bound updated        -> *.db variant
 *   no pragma            -> serial loop (no xloop)
 *
 * The `auto` pragma (the auto-parallelizing frontend's request) runs
 * the same analyses but must preserve serial semantics without any
 * programmer assertion to lean on:
 *
 *   auto + proven nothing       -> xloop.uc
 *   auto + reg / mem / both     -> or / om / orm, as for `ordered`
 *   auto + inconclusive tests   -> om/orm, flagged `speculative`:
 *       the static ZIV/SIV tests could not prove independence
 *       (irregular subscripts, symbolic offsets, MIV), so the loop is
 *       run as a speculative DOACROSS — lanes execute ahead and the
 *       LPSU's dynamic store-address ordering provides the conflict
 *       detection the static analysis could not.
 *   auto + dynamic bound        -> ordered variant (*.db with uc
 *       promoted to om): an unordered bound update is worklist
 *       semantics, not serial-equivalent, so `auto` never picks it.
 *   auto never selects ua (atomicity is a programmer assertion).
 */

#ifndef XLOOPS_COMPILER_PATTERN_SELECT_H
#define XLOOPS_COMPILER_PATTERN_SELECT_H

#include "compiler/dep_analysis.h"
#include "isa/opcodes.h"

namespace xloops {

/** Complete analysis verdict for one loop. */
struct LoopSelection
{
    bool serial = false;        ///< no xloop (Pragma::None)
    LoopPattern pattern = LoopPattern::UC;
    bool dynamicBound = false;
    bool dataDepExit = false;   ///< ExitWhen present: lowers to *.de
    std::vector<std::string> cirs;
    bool carriedMemDep = false;

    /** Any subscript pair was AssumedCarried: the static ZIV/SIV
     *  tests were inconclusive (set for ordered and auto loops). */
    bool inconclusive = false;

    /** Auto-selected memory ordering rests *only* on inconclusive
     *  evidence — a speculative DOACROSS (no proven carried distance;
     *  the LPSU's dynamic ordering is the safety net). */
    bool speculative = false;

    /** The selection came from Pragma::Auto. */
    bool autoSelected = false;

    /** The xloop opcode implementing this selection. */
    Op opcode() const;

    /** Compact human name: "serial", "uc", "or.db", "om.de",
     *  "om?" (speculative om), ... — the oracle-test vocabulary. */
    std::string describe() const;
};

/** Run all analysis passes and select the encoding for @p loop. */
LoopSelection selectPattern(const Loop &loop);

} // namespace xloops

#endif // XLOOPS_COMPILER_PATTERN_SELECT_H
