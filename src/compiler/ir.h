/**
 * @file
 * The xcc loop IR: statements, loops with pragma annotations, and a
 * small whole-program container. This is the compiler front end's
 * output (the paper used #pragma-tagged C through LLVM; we model the
 * post-frontend form the XLOOPS passes operate on).
 */

#ifndef XLOOPS_COMPILER_IR_H
#define XLOOPS_COMPILER_IR_H

#include <string>
#include <vector>

#include "compiler/expr.h"

namespace xloops {

/** Programmer annotation on a loop (paper Section II-B, plus the
 *  auto-parallelizing extension: `auto` asks the compiler to pick the
 *  least restrictive serial-equivalent encoding itself). */
enum class Pragma
{
    None,       ///< plain serial loop
    Unordered,  ///< #pragma xloops unordered
    Ordered,    ///< #pragma xloops ordered
    Atomic,     ///< #pragma xloops atomic
    Auto,       ///< #pragma xloops auto (compiler decides; see
                ///< selectPattern's speculative-DOACROSS rules)
};

struct Stmt;

/** A counted loop: for (iv = lower; iv < upper; iv++). */
struct Loop
{
    std::string iv;
    ExprPtr lower;
    ExprPtr upper;        ///< Var upper bound enables *.db detection
    Pragma pragma = Pragma::None;
    std::vector<Stmt> body;
    bool hintSpecialize = true;   ///< software specialization hint
};

/** One IR statement. */
struct Stmt
{
    enum class Kind
    {
        AssignScalar,  ///< name = expr
        StoreArray,    ///< array[index] = expr
        If,            ///< if (cond) thenBody else elseBody
        Nested,        ///< a nested loop
        ExitWhen,      ///< break the enclosing loop when cond != 0
                       ///< (lowers to the xloop.*.de extension)
    };

    Kind kind = Kind::AssignScalar;
    std::string name;          ///< AssignScalar target
    std::string array;         ///< StoreArray target
    ExprPtr index;             ///< StoreArray index
    ExprPtr value;             ///< AssignScalar / StoreArray value
    ExprPtr cond;              ///< If condition
    std::vector<Stmt> thenBody;
    std::vector<Stmt> elseBody;
    std::vector<Loop> nested;  ///< Nested (exactly one)
};

// Statement factories.
Stmt assign(const std::string &name, ExprPtr value);
Stmt store(const std::string &array, ExprPtr index, ExprPtr value);
Stmt ifThen(ExprPtr cond, std::vector<Stmt> then_body,
            std::vector<Stmt> else_body = {});
Stmt nested(Loop loop);
Stmt exitWhen(ExprPtr cond);

/** True when @p body contains an ExitWhen at this loop level
 *  (nested loops' exits belong to the nested loops). */
bool hasExitWhen(const std::vector<Stmt> &body);

/** Scalar read/write footprint of a statement list. */
struct RwSets
{
    std::set<std::string> readFirst;  ///< read before any write
    std::set<std::string> written;
    std::set<std::string> readAnywhere;
};

/** Compute scalar read/write sets over @p body in program order.
 *  Both branches of an If are merged conservatively. */
RwSets scalarRw(const std::vector<Stmt> &body);

/** Collect all array writes (array, index) in @p body, recursing
 *  through Ifs but not into nested loops. */
void collectArrayWrites(
    const std::vector<Stmt> &body,
    std::vector<std::pair<std::string, ExprPtr>> &out);

/** Collect all array reads (array, index) in @p body. */
void collectArrayReads(
    const std::vector<Stmt> &body,
    std::vector<std::pair<std::string, ExprPtr>> &out);

} // namespace xloops

#endif // XLOOPS_COMPILER_IR_H
