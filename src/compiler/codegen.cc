#include "compiler/codegen.h"

#include <sstream>

#include "asm/assembler.h"
#include "common/log.h"

namespace xloops {

namespace {

/** True for expression-temporary registers (r26..r31). */
bool
isTempReg(const std::string &reg)
{
    if (reg.size() < 2 || reg[0] != 'r')
        return false;
    const int n = std::atoi(reg.c_str() + 1);
    return n >= 26;
}

/** Structural rendering used for pointer-MIV keys. */
std::string
render(const ExprPtr &e)
{
    if (!e)
        return "";
    switch (e->kind) {
      case Expr::Kind::Const:
        return std::to_string(e->cval);
      case Expr::Kind::Var:
        return e->var;
      case Expr::Kind::Load:
        return e->array + "[" + render(e->index) + "]";
      case Expr::Kind::Bin:
        return "(" + render(e->lhs) + "#" +
               std::to_string(static_cast<int>(e->op)) + "#" +
               render(e->rhs) + ")";
    }
    return "?";
}

} // namespace

void
CodeGen::declareArray(const std::string &name, unsigned words,
                      const std::vector<i32> &init)
{
    if (arrays.count(name))
        fatal(strf("array '", name, "' declared twice"));
    if (init.size() > words)
        fatal(strf("array '", name, "' init longer than the array"));
    arrays[name] = ArrayDecl{words, init};
}

void
CodeGen::emit(const std::string &line)
{
    lines.push_back("  " + line);
}

std::string
CodeGen::newLabel(const std::string &stem)
{
    return stem + std::to_string(labelCounter++);
}

std::string
CodeGen::scalarReg(const std::string &name)
{
    auto it = scalarRegs.find(name);
    if (it != scalarRegs.end())
        return it->second;
    if (nextScalar > 25)
        fatal("xcc ran out of scalar registers");
    const std::string reg = "r" + std::to_string(nextScalar++);
    scalarRegs[name] = reg;
    return reg;
}

std::string
CodeGen::arrayBaseReg(const std::string &name)
{
    if (!arrays.count(name))
        fatal(strf("use of undeclared array '", name, "'"));
    auto it = baseRegs.find(name);
    if (it != baseRegs.end())
        return it->second;
    const std::string reg = scalarReg("&" + name);
    baseRegs[name] = reg;
    // Bases are materialized lazily at the point of first use; for
    // simplicity (and since kernels use arrays from the start) we
    // hoist all la instructions to the prologue in compile().
    return reg;
}

std::string
CodeGen::tempReg()
{
    if (tempDepth >= 6)
        fatal("xcc expression too deep (out of temp registers)");
    return "r" + std::to_string(26 + tempDepth++);
}

void
CodeGen::releaseTemp()
{
    XL_ASSERT(tempDepth > 0, "temp underflow");
    tempDepth--;
}

std::string
CodeGen::pointerKey(const std::string &array, const AffineForm &form) const
{
    return array + "@" + std::to_string(form.coeff) + "@" +
           render(form.invariant);
}

std::string
CodeGen::addressOf(const std::string &array, const ExprPtr &index)
{
    // Pointer MIV: reuse a strength-reduced pointer when available.
    if (inXloopBody && lsr) {
        const auto form = affineIn(index, activeIv);
        if (form && form->coeff != 0) {
            const std::string key = pointerKey(array, *form);
            for (const auto &miv : activeMivs)
                if (miv.key == key)
                    return miv.reg;
        }
    }
    // Generic addressing: base + 4*index. When the index landed in a
    // temp, shift it in place so the net temp allocation stays one.
    const std::string idx = evalExpr(index);
    const std::string t = isTempReg(idx) ? idx : tempReg();
    emit("slli " + t + ", " + idx + ", 2");
    emit("add " + t + ", " + arrayBaseReg(array) + ", " + t);
    return t;  // caller releases iff isTempReg(t)
}

std::string
CodeGen::evalExpr(const ExprPtr &expr)
{
    switch (expr->kind) {
      case Expr::Kind::Var:
        return scalarReg(expr->var);
      default: {
        const std::string t = tempReg();
        tempDepth--;          // evalInto re-allocates
        evalInto(expr, t);
        tempDepth++;
        return t;
      }
    }
}

void
CodeGen::evalInto(const ExprPtr &expr, const std::string &reg)
{
    switch (expr->kind) {
      case Expr::Kind::Const:
        emit("li " + reg + ", " + std::to_string(expr->cval));
        return;
      case Expr::Kind::Var:
        if (scalarReg(expr->var) != reg)
            emit("mov " + reg + ", " + scalarReg(expr->var));
        return;
      case Expr::Kind::Load: {
        const std::string addr = addressOf(expr->array, expr->index);
        emit("lw " + reg + ", 0(" + addr + ")");
        if (isTempReg(addr))
            releaseTemp();
        return;
      }
      case Expr::Kind::Bin:
        break;
    }

    // Binary operator.
    const ExprPtr &l = expr->lhs;
    const ExprPtr &r = expr->rhs;
    const bool rConst = r->kind == Expr::Kind::Const &&
                        fitsSigned(r->cval, 14);

    const std::string a = evalExpr(l);
    const bool aTemp = isTempReg(a);
    std::string b;
    bool bTemp = false;

    auto evalB = [&]() {
        b = evalExpr(r);
        bTemp = isTempReg(b);
    };
    auto finish = [&]() {
        if (bTemp)
            releaseTemp();
        if (aTemp)
            releaseTemp();
    };
    auto rr = [&](const std::string &mnem) {
        evalB();
        emit(mnem + " " + reg + ", " + a + ", " + b);
        finish();
    };
    auto riOrRr = [&](const std::string &imnem, const std::string &mnem) {
        if (rConst) {
            emit(imnem + " " + reg + ", " + a + ", " +
                 std::to_string(r->cval));
            if (aTemp)
                releaseTemp();
        } else {
            rr(mnem);
        }
    };

    switch (expr->op) {
      case BinOp::Add: riOrRr("addi", "add"); return;
      case BinOp::Sub:
        if (rConst) {
            emit("addi " + reg + ", " + a + ", " +
                 std::to_string(-r->cval));
            if (aTemp)
                releaseTemp();
        } else {
            rr("sub");
        }
        return;
      case BinOp::Mul: rr("mul"); return;
      case BinOp::Div: rr("div"); return;
      case BinOp::Rem: rr("rem"); return;
      case BinOp::And: riOrRr("andi", "and"); return;
      case BinOp::Or: riOrRr("ori", "or"); return;
      case BinOp::Xor: riOrRr("xori", "xor"); return;
      case BinOp::Shl: riOrRr("slli", "sll"); return;
      case BinOp::Shr: riOrRr("srli", "srl"); return;
      case BinOp::Lt: riOrRr("slti", "slt"); return;
      case BinOp::Ge:
        riOrRr("slti", "slt");
        emit("xori " + reg + ", " + reg + ", 1");
        return;
      case BinOp::Gt:
        evalB();
        emit("slt " + reg + ", " + b + ", " + a);
        finish();
        return;
      case BinOp::Le:
        evalB();
        emit("slt " + reg + ", " + b + ", " + a);
        emit("xori " + reg + ", " + reg + ", 1");
        finish();
        return;
      case BinOp::Eq:
        rr("xor");
        emit("sltiu " + reg + ", " + reg + ", 1");
        return;
      case BinOp::Ne:
        rr("xor");
        emit("sltu " + reg + ", zero, " + reg);
        return;
      case BinOp::Min:
      case BinOp::Max: {
        evalB();
        const std::string done = newLabel("mm");
        if (reg != a)
            emit("mov " + reg + ", " + a);
        if (expr->op == BinOp::Min)
            emit("ble " + a + ", " + b + ", " + done);
        else
            emit("bge " + a + ", " + b + ", " + done);
        emit("mov " + reg + ", " + b);
        lines.push_back(done + ":");
        finish();
        return;
      }
    }
    panic("unhandled binary operator");
}

/**
 * Atomic RMW lowering: inside an xloop.ua body, a store of the form
 *   a[idx] = a[idx] op e     (op in {+, &, |, ^, min, max})
 * lowers to one amo instruction, so unordered lanes update the cell
 * atomically — the lw / op / sw sequence a plain store would emit
 * loses updates when two lanes hit the same cell. Returns false when
 * the store is not such a read-modify-write.
 */
bool
CodeGen::genAmoStore(const Stmt &stmt)
{
    if (!stmt.value || stmt.value->kind != Expr::Kind::Bin)
        return false;
    const char *mnemonic = nullptr;
    switch (stmt.value->op) {
      case BinOp::Add: mnemonic = "amoadd"; break;
      case BinOp::And: mnemonic = "amoand"; break;
      case BinOp::Or:  mnemonic = "amoor"; break;
      case BinOp::Xor: mnemonic = "amoxor"; break;
      case BinOp::Min: mnemonic = "amomin"; break;
      case BinOp::Max: mnemonic = "amomax"; break;
      default: return false;
    }
    auto readsCell = [&](const ExprPtr &e) {
        return e->kind == Expr::Kind::Load && e->array == stmt.array &&
               exprEquals(e->index, stmt.index);
    };
    ExprPtr operand;
    if (readsCell(stmt.value->lhs))
        operand = stmt.value->rhs;
    else if (readsCell(stmt.value->rhs))
        operand = stmt.value->lhs;
    else
        return false;
    // The other operand must not read the updated array at all — its
    // value would depend on unordered neighbor updates.
    std::vector<std::pair<std::string, ExprPtr>> loads;
    operand->collectLoads(loads);
    for (const auto &[array, index] : loads)
        if (array == stmt.array)
            return false;

    const std::string val = evalExpr(operand);
    const bool vTemp = isTempReg(val);
    const std::string addr = addressOf(stmt.array, stmt.index);
    const bool aTemp = isTempReg(addr);
    const std::string old = tempReg();
    emit(std::string(mnemonic) + " " + old + ", " + val + ", (" +
         addr + ")");
    releaseTemp();
    if (aTemp)
        releaseTemp();
    if (vTemp)
        releaseTemp();
    return true;
}

void
CodeGen::genStmt(const Stmt &stmt)
{
    switch (stmt.kind) {
      case Stmt::Kind::AssignScalar:
        evalInto(stmt.value, scalarReg(stmt.name));
        return;
      case Stmt::Kind::StoreArray: {
        if (inAtomicBody && genAmoStore(stmt))
            return;
        const std::string value = evalExpr(stmt.value);
        const bool vTemp = isTempReg(value);
        const std::string addr = addressOf(stmt.array, stmt.index);
        emit("sw " + value + ", 0(" + addr + ")");
        if (isTempReg(addr))
            releaseTemp();
        if (vTemp)
            releaseTemp();
        return;
      }
      case Stmt::Kind::If: {
        const std::string cond = evalExpr(stmt.cond);
        const bool cTemp = isTempReg(cond);
        const std::string elseL = newLabel("else");
        const std::string endL = newLabel("endif");
        emit("beqz " + cond + ", " +
             (stmt.elseBody.empty() ? endL : elseL));
        if (cTemp)
            releaseTemp();
        genStmts(stmt.thenBody);
        if (!stmt.elseBody.empty()) {
            emit("j " + endL);
            lines.push_back(elseL + ":");
            genStmts(stmt.elseBody);
        }
        lines.push_back(endL + ":");
        return;
      }
      case Stmt::Kind::Nested:
        genLoop(stmt.nested.front());
        return;
      case Stmt::Kind::ExitWhen: {
        if (activeExitFlag.empty())
            fatal("exitWhen outside a data-dependent-exit loop");
        const std::string cond = evalExpr(stmt.cond);
        // Any nonzero value raises the flag.
        emit("or " + activeExitFlag + ", " + activeExitFlag + ", " +
             cond);
        if (isTempReg(cond))
            releaseTemp();
        return;
      }
    }
}

void
CodeGen::genStmts(const std::vector<Stmt> &body)
{
    for (const Stmt &s : body)
        genStmt(s);
}

void
CodeGen::genLoop(const Loop &loop)
{
    const LoopSelection sel = selectPattern(loop);

    // Induction variable and bound registers.
    const std::string ivReg = scalarReg(loop.iv);
    evalInto(loop.lower, ivReg);
    std::string boundReg;
    if (loop.upper->kind == Expr::Kind::Var) {
        boundReg = scalarReg(loop.upper->var);
    } else {
        boundReg = scalarReg("__bound" + std::to_string(labelCounter));
        evalInto(loop.upper, boundReg);
    }

    const std::string skipL = newLabel("skip");
    const std::string bodyL = newLabel("body");
    emit("bge " + ivReg + ", " + boundReg + ", " + skipL);

    // Data-dependent exit: a dedicated flag register, cleared before
    // entry, raised by exitWhen statements (and by the implicit
    // upper-bound check emitted at the bottom of the body).
    std::string exitFlag;
    if (sel.dataDepExit) {
        exitFlag = scalarReg("__exit" + std::to_string(labelCounter));
        emit("li " + exitFlag + ", 0");
    }

    // Save the enclosing MIV context (nested loops).
    const auto savedMivs = activeMivs;
    const auto savedIv = activeIv;
    const bool savedIn = inXloopBody;
    const bool savedAtomic = inAtomicBody;
    const auto savedExit = activeExitFlag;
    activeExitFlag = exitFlag;

    std::vector<PointerMiv> myMivs;
    if (!sel.serial && lsr) {
        // Loop strength reduction: create a pointer MIV for every
        // affine array access whose invariant part is loop-invariant.
        const RwSets rw = scalarRw(loop.body);
        std::vector<std::pair<std::string, ExprPtr>> accesses;
        collectArrayWrites(loop.body, accesses);
        collectArrayReads(loop.body, accesses);
        for (const auto &[array, index] : accesses) {
            const auto form = affineIn(index, loop.iv);
            if (!form || form->coeff == 0)
                continue;
            std::set<std::string> invVars;
            form->invariant->collectVars(invVars);
            bool invariantOk = true;
            for (const auto &v : invVars)
                if (rw.written.count(v) || v == loop.iv)
                    invariantOk = false;
            if (!invariantOk)
                continue;
            const std::string key = pointerKey(array, *form);
            bool seen = false;
            for (const auto &m : myMivs)
                if (m.key == key)
                    seen = true;
            for (const auto &m : activeMivs)
                if (m.key == key)
                    seen = true;  // outer loop already reduced it
            if (seen)
                continue;
            // p = base + 4*subscript evaluated at iv = lower.
            const std::string preg =
                scalarReg("__ptr" + std::to_string(labelCounter) + key);
            const std::string idx = evalExpr(index);
            emit("slli " + preg + ", " + idx + ", 2");
            if (isTempReg(idx))
                releaseTemp();
            emit("add " + preg + ", " + arrayBaseReg(array) + ", " +
                 preg);
            myMivs.push_back({key, preg, 4 * form->coeff});
        }
    }

    if (!sel.serial) {
        activeIv = loop.iv;
        inXloopBody = true;
        inAtomicBody = sel.pattern == LoopPattern::UA;
        for (const auto &m : myMivs)
            activeMivs.push_back(m);
    }

    lines.push_back(bodyL + ":");
    genStmts(loop.body);

    if (sel.dataDepExit) {
        // Implicit upper-bound exit: flag |= (iv + 1 >= upper).
        const std::string t = tempReg();
        emit("addi " + t + ", " + ivReg + ", 1");
        emit("slt " + t + ", " + t + ", " + boundReg);
        emit("xori " + t + ", " + t + ", 1");
        emit("or " + exitFlag + ", " + exitFlag + ", " + t);
        releaseTemp();
    }

    if (!sel.serial) {
        for (const auto &m : myMivs)
            emit("addiu.xi " + m.reg + ", " + std::to_string(m.strideBytes));
        std::string xl = std::string(opTraits(sel.opcode()).mnemonic) +
                         " " + ivReg + ", " +
                         (sel.dataDepExit ? exitFlag : boundReg) + ", " +
                         bodyL;
        if (!loop.hintSpecialize)
            xl += ", nohint";
        emit(xl);
    } else if (sel.dataDepExit) {
        emit("addi " + ivReg + ", " + ivReg + ", 1");
        emit("beqz " + exitFlag + ", " + bodyL);
    } else {
        emit("addi " + ivReg + ", " + ivReg + ", 1");
        emit("blt " + ivReg + ", " + boundReg + ", " + bodyL);
    }
    lines.push_back(skipL + ":");

    activeMivs = savedMivs;
    activeIv = savedIv;
    inXloopBody = savedIn;
    inAtomicBody = savedAtomic;
    activeExitFlag = savedExit;
}

std::string
CodeGen::compile(const std::vector<Stmt> &topLevel)
{
    lines.clear();
    scalarRegs.clear();
    baseRegs.clear();
    nextScalar = 8;
    tempDepth = 0;
    labelCounter = 0;
    activeMivs.clear();
    inXloopBody = false;

    // Body first (so we know which array bases are used)...
    genStmts(topLevel);
    emit("halt");

    // ...then the prologue of la instructions.
    std::vector<std::string> prologue;
    for (const auto &[array, reg] : baseRegs)
        prologue.push_back("  la " + reg + ", " + array);

    std::ostringstream out;
    out << "  .text\n_start:\n";
    for (const auto &line : prologue)
        out << line << "\n";
    for (const auto &line : lines)
        out << line << "\n";
    out << "  .data\n";
    for (const auto &[name, decl] : arrays) {
        out << name << ":";
        if (!decl.init.empty()) {
            out << " .word ";
            for (size_t i = 0; i < decl.init.size(); i++)
                out << (i ? ", " : "") << decl.init[i];
            out << "\n";
            if (decl.words > decl.init.size())
                out << "  .space "
                    << 4 * (decl.words - decl.init.size()) << "\n";
        } else {
            out << " .space " << 4 * decl.words << "\n";
        }
    }
    return out.str();
}

Program
CodeGen::compileToProgram(const std::vector<Stmt> &topLevel)
{
    return assemble(compile(topLevel));
}

} // namespace xloops
