#include "compiler/fission.h"

#include <map>
#include <numeric>

#include "compiler/pattern_select.h"

namespace xloops {

namespace {

/** Scalar and array footprint of one top-level statement. */
struct Footprint
{
    std::set<std::string> scalarRead;
    std::set<std::string> scalarWrite;
    std::set<std::string> arrayRead;
    std::set<std::string> arrayWrite;
};

Footprint
footprintOf(const Stmt &stmt)
{
    std::vector<Stmt> one;
    one.push_back(stmt);
    Footprint fp;
    const RwSets rw = scalarRw(one);
    fp.scalarRead = rw.readAnywhere;
    fp.scalarWrite = rw.written;
    std::vector<std::pair<std::string, ExprPtr>> accs;
    collectArrayWrites(one, accs);
    for (const auto &[array, index] : accs)
        fp.arrayWrite.insert(array);
    accs.clear();
    collectArrayReads(one, accs);
    for (const auto &[array, index] : accs)
        fp.arrayRead.insert(array);
    return fp;
}

/** True when the two statements touch a common entity with at least
 *  one side writing — a dependence that pins them to one fragment. */
bool
conflicts(const Footprint &a, const Footprint &b)
{
    auto hits = [](const std::set<std::string> &w,
                   const std::set<std::string> &rw) {
        for (const auto &name : w)
            if (rw.count(name))
                return true;
        return false;
    };
    return hits(a.scalarWrite, b.scalarWrite) ||
           hits(a.scalarWrite, b.scalarRead) ||
           hits(b.scalarWrite, a.scalarRead) ||
           hits(a.arrayWrite, b.arrayWrite) ||
           hits(a.arrayWrite, b.arrayRead) ||
           hits(b.arrayWrite, a.arrayRead);
}

struct UnionFind
{
    std::vector<size_t> parent;

    explicit UnionFind(size_t n) : parent(n)
    {
        std::iota(parent.begin(), parent.end(), size_t{0});
    }

    size_t find(size_t x)
    {
        while (parent[x] != x)
            x = parent[x] = parent[parent[x]];
        return x;
    }

    void unite(size_t a, size_t b) { parent[find(a)] = find(b); }
};

bool
containsNested(const std::vector<Stmt> &body)
{
    for (const Stmt &s : body) {
        if (s.kind == Stmt::Kind::Nested)
            return true;
        if (s.kind == Stmt::Kind::If &&
            (containsNested(s.thenBody) || containsNested(s.elseBody)))
            return true;
    }
    return false;
}

} // namespace

std::vector<Loop>
fissionLoop(const Loop &loop)
{
    // Bail on anything whose semantics couple the whole body: serial
    // loops gain nothing; an ExitWhen cancels every statement after
    // it; nested loops and written ivs/bounds entangle the iteration
    // space itself.
    if (loop.pragma == Pragma::None || loop.body.size() < 2)
        return {};
    if (hasExitWhen(loop.body) || containsNested(loop.body))
        return {};
    const RwSets rw = scalarRw(loop.body);
    if (rw.written.count(loop.iv))
        return {};
    if (loop.upper->kind == Expr::Kind::Var &&
        rw.written.count(loop.upper->var))
        return {};  // dynamic bound: the bound writer feeds everyone

    const size_t n = loop.body.size();
    std::vector<Footprint> fps;
    fps.reserve(n);
    for (const Stmt &s : loop.body)
        fps.push_back(footprintOf(s));

    UnionFind uf(n);
    for (size_t i = 0; i < n; i++)
        for (size_t j = i + 1; j < n; j++)
            if (conflicts(fps[i], fps[j]))
                uf.unite(i, j);

    // Group statements by component, components ordered by their
    // first statement so output preserves program order.
    std::map<size_t, size_t> groupOf;  // root -> fragment index
    std::vector<std::vector<Stmt>> fragments;
    for (size_t i = 0; i < n; i++) {
        const size_t root = uf.find(i);
        auto it = groupOf.find(root);
        if (it == groupOf.end()) {
            it = groupOf.emplace(root, fragments.size()).first;
            fragments.emplace_back();
        }
        fragments[it->second].push_back(loop.body[i]);
    }
    if (fragments.size() < 2)
        return {};

    std::vector<Loop> out;
    out.reserve(fragments.size());
    for (auto &frag : fragments) {
        Loop piece;
        piece.iv = loop.iv;
        piece.lower = loop.lower;
        piece.upper = loop.upper;
        piece.pragma = loop.pragma;
        piece.hintSpecialize = loop.hintSpecialize;
        piece.body = std::move(frag);
        out.push_back(std::move(piece));
    }

    // Only worth the extra loop overhead when some fragment escapes
    // to a less restrictive encoding than the unsplit loop forces.
    const std::string whole = selectPattern(loop).describe();
    for (const Loop &piece : out)
        if (selectPattern(piece).describe() != whole)
            return out;
    return {};
}

void
applyFission(std::vector<Stmt> &topLevel)
{
    std::vector<Stmt> result;
    for (Stmt &s : topLevel) {
        switch (s.kind) {
          case Stmt::Kind::If:
            applyFission(s.thenBody);
            applyFission(s.elseBody);
            break;
          case Stmt::Kind::Nested: {
            Loop &loop = s.nested.front();
            applyFission(loop.body);  // innermost first
            std::vector<Loop> pieces = fissionLoop(loop);
            if (!pieces.empty()) {
                for (Loop &piece : pieces)
                    result.push_back(nested(std::move(piece)));
                continue;
            }
            break;
          }
          default:
            break;
        }
        result.push_back(std::move(s));
    }
    topLevel = std::move(result);
}

} // namespace xloops
