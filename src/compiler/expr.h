/**
 * @file
 * Expression trees for the xcc loop IR: integer expressions over
 * constants, scalar variables (including loop induction variables),
 * array reads, and binary operators. Value-semantic via shared_ptr to
 * immutable nodes, with factory helpers for terse test/kernel code.
 */

#ifndef XLOOPS_COMPILER_EXPR_H
#define XLOOPS_COMPILER_EXPR_H

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace xloops {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/** Binary operators understood by the code generator. */
enum class BinOp
{
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Lt, Le, Gt, Ge, Eq, Ne,
    Min, Max,
};

/** An immutable expression node. */
class Expr
{
  public:
    enum class Kind { Const, Var, Load, Bin };

    Kind kind;
    i32 cval = 0;            ///< Const
    std::string var;         ///< Var: scalar / induction variable name
    std::string array;       ///< Load: array name
    ExprPtr index;           ///< Load: element index (word granularity)
    BinOp op = BinOp::Add;   ///< Bin
    ExprPtr lhs, rhs;        ///< Bin

    /** All scalar variables read anywhere in this expression. */
    void collectVars(std::set<std::string> &out) const;

    /** All (array, index) reads anywhere in this expression. */
    void collectLoads(std::vector<std::pair<std::string, ExprPtr>> &out)
        const;
};

// Factory helpers.
ExprPtr cst(i32 value);
ExprPtr var(const std::string &name);
ExprPtr ld(const std::string &array, ExprPtr index);
ExprPtr bin(BinOp op, ExprPtr lhs, ExprPtr rhs);
inline ExprPtr add(ExprPtr a, ExprPtr b) { return bin(BinOp::Add, a, b); }
inline ExprPtr sub(ExprPtr a, ExprPtr b) { return bin(BinOp::Sub, a, b); }
inline ExprPtr mul(ExprPtr a, ExprPtr b) { return bin(BinOp::Mul, a, b); }

/**
 * Affine form of an expression with respect to one induction
 * variable: coeff * iv + offsetExpr, where offsetExpr is
 * iv-invariant. Returned by affineIn() when the expression is affine.
 */
struct AffineForm
{
    i32 coeff = 0;       ///< multiplier of the induction variable
    ExprPtr invariant;   ///< iv-invariant remainder (may be cst(0))
    bool constOffset = false;
    i32 constValue = 0;  ///< valid when the invariant is a constant
};

/** Extract coeff*iv + invariant, or nullopt if not affine in @p iv. */
std::optional<AffineForm> affineIn(const ExprPtr &expr,
                                   const std::string &iv);

/** Structural equality (same tree shape, names, constants, ops). */
bool exprEquals(const ExprPtr &a, const ExprPtr &b);

} // namespace xloops

#endif // XLOOPS_COMPILER_EXPR_H
