/**
 * @file
 * xcc back end: compile the loop IR to XLOOPS assembly.
 *
 * Mirrors the paper's compiler structure: loops annotated with
 * pragmas are rotated into bottom-tested form and terminated with the
 * xloop variant chosen by pattern selection; the loop-strength-
 * reduction pass turns affine array subscripts into pointer mutual
 * induction variables updated with addiu.xi so the LPSU can compute
 * them in parallel. A `lsrEnabled(false)` build reproduces the RTL
 * study's no-xi configuration (Section V).
 */

#ifndef XLOOPS_COMPILER_CODEGEN_H
#define XLOOPS_COMPILER_CODEGEN_H

#include <map>
#include <string>
#include <vector>

#include "asm/program.h"
#include "compiler/pattern_select.h"

namespace xloops {

/** Compiles one module (arrays + top-level statements) to assembly. */
class CodeGen
{
  public:
    /** Declare a word array; optional initial words (rest zero). */
    void declareArray(const std::string &name, unsigned words,
                      const std::vector<i32> &init = {});

    /** Toggle the xi-generating loop strength reduction pass. */
    void lsrEnabled(bool enabled) { lsr = enabled; }

    /** Generate the full assembly module (ends with halt + .data). */
    std::string compile(const std::vector<Stmt> &topLevel);

    /** compile() + assemble() in one step. */
    Program compileToProgram(const std::vector<Stmt> &topLevel);

  private:
    struct ArrayDecl
    {
        unsigned words;
        std::vector<i32> init;
    };

    struct PointerMiv
    {
        std::string key;     ///< array + subscript shape
        std::string reg;
        i32 strideBytes;
    };

    // Register allocation.
    std::string scalarReg(const std::string &name);
    std::string arrayBaseReg(const std::string &name);
    std::string tempReg();
    void releaseTemp();

    // Emission.
    void emit(const std::string &line);
    std::string newLabel(const std::string &stem);
    std::string evalExpr(const ExprPtr &expr);
    void evalInto(const ExprPtr &expr, const std::string &reg);
    void genStmts(const std::vector<Stmt> &body);
    void genStmt(const Stmt &stmt);
    bool genAmoStore(const Stmt &stmt);
    void genLoop(const Loop &loop);
    std::string addressOf(const std::string &array, const ExprPtr &index);

    std::string pointerKey(const std::string &array,
                           const AffineForm &form) const;

    bool lsr = true;
    std::map<std::string, ArrayDecl> arrays;
    std::map<std::string, std::string> scalarRegs;  // name -> "rN"
    std::map<std::string, std::string> baseRegs;    // array -> "rN"
    unsigned nextScalar = 8;
    unsigned tempDepth = 0;
    unsigned labelCounter = 0;
    std::vector<std::string> lines;
    // Active pointer MIVs for the innermost xloop being generated.
    std::vector<PointerMiv> activeMivs;
    std::string activeIv;
    bool inXloopBody = false;
    // Inside an xloop.ua body: read-modify-write stores lower to amo
    // instructions so unordered lanes cannot lose updates.
    bool inAtomicBody = false;
    // Exit-flag register of the innermost data-dependent-exit loop.
    std::string activeExitFlag;
};

} // namespace xloops

#endif // XLOOPS_COMPILER_CODEGEN_H
