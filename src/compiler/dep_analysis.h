/**
 * @file
 * XLOOPS dependence analysis passes (paper Section II-B):
 *
 *  - register dependence testing via scalar use-definition chains:
 *    scalars that are read before written AND written in the loop
 *    body carry values between iterations (the CIRs);
 *  - memory dependence testing via the classic zero-, single-, and
 *    multiple-index-variable subscript tests (ZIV/SIV/MIV [9]);
 *  - loop-bound update detection for *.db selection.
 */

#ifndef XLOOPS_COMPILER_DEP_ANALYSIS_H
#define XLOOPS_COMPILER_DEP_ANALYSIS_H

#include <string>
#include <vector>

#include "compiler/ir.h"

namespace xloops {

/** Result of register dependence testing. */
struct RegDepResult
{
    std::vector<std::string> cirs;  ///< cross-iteration registers
};

/** How a memory pair was classified. */
enum class MemDepVerdict
{
    Independent,        ///< proven no cross-iteration dependence
    IntraIteration,     ///< same-iteration only (distance 0)
    CarriedDistance,    ///< proven carried with constant distance
    AssumedCarried,     ///< conservative (MIV / non-affine)
};

/** One tested subscript pair. */
struct MemDepPair
{
    std::string array;
    MemDepVerdict verdict = MemDepVerdict::Independent;
    i32 distance = 0;   ///< iterations, for CarriedDistance
};

/** Result of memory dependence testing. */
struct MemDepResult
{
    std::vector<MemDepPair> pairs;
    bool hasCarriedDep = false;
};

/** Identify CIRs: scalars read-before-write and written in the body.
 *  The induction variable and the bound variable are excluded. */
RegDepResult regDepAnalysis(const Loop &loop);

/** ZIV/SIV/MIV subscript testing over every (write, access) pair. */
MemDepResult memDepAnalysis(const Loop &loop);

/** True when the body assigns the loop's (variable) upper bound. */
bool boundUpdateAnalysis(const Loop &loop);

} // namespace xloops

#endif // XLOOPS_COMPILER_DEP_ANALYSIS_H
