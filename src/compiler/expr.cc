#include "compiler/expr.h"

#include "common/log.h"

namespace xloops {

ExprPtr
cst(i32 value)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Const;
    e->cval = value;
    return e;
}

ExprPtr
var(const std::string &name)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Var;
    e->var = name;
    return e;
}

ExprPtr
ld(const std::string &array, ExprPtr index)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Load;
    e->array = array;
    e->index = std::move(index);
    return e;
}

ExprPtr
bin(BinOp op, ExprPtr lhs, ExprPtr rhs)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Bin;
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
}

void
Expr::collectVars(std::set<std::string> &out) const
{
    switch (kind) {
      case Kind::Const:
        break;
      case Kind::Var:
        out.insert(var);
        break;
      case Kind::Load:
        index->collectVars(out);
        break;
      case Kind::Bin:
        lhs->collectVars(out);
        rhs->collectVars(out);
        break;
    }
}

void
Expr::collectLoads(std::vector<std::pair<std::string, ExprPtr>> &out) const
{
    switch (kind) {
      case Kind::Const:
      case Kind::Var:
        break;
      case Kind::Load:
        out.emplace_back(array, index);
        index->collectLoads(out);
        break;
      case Kind::Bin:
        lhs->collectLoads(out);
        rhs->collectLoads(out);
        break;
    }
}

namespace {

bool
usesVar(const ExprPtr &expr, const std::string &iv)
{
    std::set<std::string> vars;
    expr->collectVars(vars);
    return vars.count(iv) != 0;
}

} // namespace

std::optional<AffineForm>
affineIn(const ExprPtr &expr, const std::string &iv)
{
    AffineForm out;
    switch (expr->kind) {
      case Expr::Kind::Const:
        out.coeff = 0;
        out.invariant = expr;
        out.constOffset = true;
        out.constValue = expr->cval;
        return out;
      case Expr::Kind::Var:
        if (expr->var == iv) {
            out.coeff = 1;
            out.invariant = cst(0);
            out.constOffset = true;
            out.constValue = 0;
        } else {
            out.coeff = 0;
            out.invariant = expr;
        }
        return out;
      case Expr::Kind::Load:
        if (usesVar(expr, iv))
            return std::nullopt;  // subscripted load of the iv: not affine
        out.coeff = 0;
        out.invariant = expr;
        return out;
      case Expr::Kind::Bin: {
        const auto a = affineIn(expr->lhs, iv);
        const auto b = affineIn(expr->rhs, iv);
        if (!a || !b)
            return std::nullopt;
        auto combineInv = [&](BinOp op) -> ExprPtr {
            if (a->constOffset && b->constOffset) {
                switch (op) {
                  case BinOp::Add: return cst(a->constValue + b->constValue);
                  case BinOp::Sub: return cst(a->constValue - b->constValue);
                  case BinOp::Mul: return cst(a->constValue * b->constValue);
                  default: break;
                }
            }
            return bin(op, a->invariant, b->invariant);
        };
        switch (expr->op) {
          case BinOp::Add:
            out.coeff = a->coeff + b->coeff;
            out.invariant = combineInv(BinOp::Add);
            break;
          case BinOp::Sub:
            out.coeff = a->coeff - b->coeff;
            out.invariant = combineInv(BinOp::Sub);
            break;
          case BinOp::Mul:
            // Affine only when one side is iv-free.
            if (a->coeff != 0 && b->coeff != 0)
                return std::nullopt;
            if (a->coeff != 0) {
                if (!b->constOffset)
                    return std::nullopt;  // coeff must be a constant
                out.coeff = a->coeff * b->constValue;
                if (a->constOffset) {
                    out.invariant = cst(a->constValue * b->constValue);
                } else {
                    out.invariant =
                        bin(BinOp::Mul, a->invariant, b->invariant);
                }
            } else if (b->coeff != 0) {
                if (!a->constOffset)
                    return std::nullopt;
                out.coeff = b->coeff * a->constValue;
                if (b->constOffset) {
                    out.invariant = cst(a->constValue * b->constValue);
                } else {
                    out.invariant =
                        bin(BinOp::Mul, a->invariant, b->invariant);
                }
            } else {
                out.coeff = 0;
                out.invariant = combineInv(BinOp::Mul);
            }
            break;
          case BinOp::Shl:
            if (b->coeff == 0 && b->constOffset) {
                out.coeff = a->coeff << b->constValue;
                if (a->constOffset) {
                    out.invariant = cst(a->constValue << b->constValue);
                } else if (a->coeff == 0) {
                    out.invariant = bin(BinOp::Shl, a->invariant,
                                        b->invariant);
                } else {
                    return std::nullopt;
                }
                break;
            }
            return std::nullopt;
          default:
            // Non-linear operator involving the iv: not affine.
            if (a->coeff != 0 || b->coeff != 0)
                return std::nullopt;
            out.coeff = 0;
            out.invariant = expr;
            break;
        }
        out.constOffset =
            out.invariant->kind == Expr::Kind::Const;
        if (out.constOffset)
            out.constValue = out.invariant->cval;
        return out;
      }
    }
    return std::nullopt;
}

bool
exprEquals(const ExprPtr &a, const ExprPtr &b)
{
    if (a == b)
        return true;
    if (!a || !b || a->kind != b->kind)
        return false;
    switch (a->kind) {
      case Expr::Kind::Const:
        return a->cval == b->cval;
      case Expr::Kind::Var:
        return a->var == b->var;
      case Expr::Kind::Load:
        return a->array == b->array && exprEquals(a->index, b->index);
      case Expr::Kind::Bin:
        return a->op == b->op && exprEquals(a->lhs, b->lhs) &&
               exprEquals(a->rhs, b->rhs);
    }
    return false;
}

} // namespace xloops
