/**
 * @file
 * Per-lane load-store queue used for memory-dependence speculation in
 * xloop.{om,orm,ua} specialized execution (paper Section II-D).
 *
 * A speculative lane buffers its stores here instead of writing
 * memory; its loads are serviced from buffered stores where possible
 * (byte-accurate own-store forwarding) and recorded so that store
 * addresses broadcast by the non-speculative lane can be checked for
 * memory-dependence violations.
 */

#ifndef XLOOPS_LPSU_LSQ_H
#define XLOOPS_LPSU_LSQ_H

#include <optional>
#include <vector>

#include "common/types.h"

namespace xloops {

class MainMemory;

/** A buffered speculative memory access. */
struct LsqAccess
{
    Addr addr = 0;
    unsigned size = 0;
    u32 value = 0;  // stores only
};

/** One lane's speculative load/store queues. */
class LaneLsq
{
  public:
    LaneLsq(unsigned load_entries, unsigned store_entries)
        : loadCap(load_entries), storeCap(store_entries)
    {}

    bool loadsFull() const { return loads.size() >= loadCap; }
    bool storesFull() const { return stores.size() >= storeCap; }
    bool hasStores() const { return !stores.empty(); }
    bool empty() const { return loads.empty() && stores.empty(); }
    size_t numLoads() const { return loads.size(); }
    size_t numStores() const { return stores.size(); }

    /**
     * Record a speculative store (program order preserved). Returns
     * false when the queue is full: a structural-stall signal the
     * lane must handle (squash-and-retry or stall), never an abort —
     * capacity pressure is an expected condition, not an invariant
     * break.
     */
    [[nodiscard]] bool pushStore(Addr addr, unsigned size, u32 value);

    /** Record a speculative load (and the value it observed) for
     *  later violation checks. Returns false when full (structural
     *  stall), like pushStore. */
    [[nodiscard]] bool pushLoad(Addr addr, unsigned size, u32 value = 0);

    /** True when buffered stores supply every byte of the access. */
    bool fullyCovered(Addr addr, unsigned size) const;

    /**
     * Read @p size bytes at @p addr: memory patched with this lane's
     * buffered stores in program order (store-load forwarding).
     */
    u32 coveredRead(MainMemory &mem, Addr addr, unsigned size) const;

    /** Does any recorded load overlap [addr, addr+size)? */
    bool loadOverlaps(Addr addr, unsigned size) const;

    /**
     * Value-based violation filtering (for the aggressive cross-lane
     * forwarding design): would any load overlapping [addr, addr+size)
     * observe a different value if re-executed against current memory
     * (patched with this lane's own stores)? When false, the ordering
     * violation is benign and the squash can be skipped.
     */
    bool loadsWouldChange(MainMemory &mem, Addr addr,
                          unsigned size) const;

    /** Pop the oldest buffered store for commit-time draining. */
    LsqAccess popOldestStore();

    /** Discard everything (squash). */
    void clear();

    /** Discard load records only (after promotion to non-speculative). */
    void clearLoads() { loads.clear(); }

  private:
    unsigned loadCap;
    unsigned storeCap;
    std::vector<LsqAccess> loads;
    std::vector<LsqAccess> stores;
};

} // namespace xloops

#endif // XLOOPS_LPSU_LSQ_H
