/**
 * @file
 * The loop-pattern specialization unit (LPSU) — the paper's core
 * microarchitectural contribution (Section II-D).
 *
 * The LPSU augments a GPP with decoupled in-order lanes managed by a
 * lane management unit (LMU). Specialized execution has two phases:
 *
 *  - scan phase: the loop body [L, xloop) and the live-in registers
 *    are copied into per-lane instruction buffers / register files
 *    (with one-time register renaming); the LMU identifies
 *    cross-iteration registers (CIRs) and builds the mutual induction
 *    variable table (MIVT) from xi instructions.
 *  - specialized execution phase: the LMU hands iteration indices to
 *    lanes. uc iterations are dynamically load balanced; ordered
 *    patterns are distributed round-robin so neighbouring lanes hold
 *    neighbouring iterations. or/orm register dependences flow
 *    through cross-iteration buffers (CIBs); om/orm/ua iterations
 *    speculate on memory order with per-lane LSQs, a store-address
 *    broadcast network, and squash-and-restart recovery; *.db loops
 *    monotonically grow the bound through the LMU.
 *
 * The model is cycle-level: one shared memory port pool and LLFU pool
 * arbitrate among lanes each cycle, and per-lane scoreboards model
 * RAW stalls exactly as in a simple in-order pipe.
 */

#ifndef XLOOPS_LPSU_LPSU_H
#define XLOOPS_LPSU_LPSU_H

#include <array>
#include <deque>
#include <map>
#include <optional>
#include <ostream>
#include <vector>

#include "asm/program.h"
#include "common/fault.h"
#include "common/loop_profile.h"
#include "common/stats.h"
#include "common/trace.h"
#include "cpu/exec_core.h"
#include "lpsu/lsq.h"
#include "mem/cache.h"
#include "mem/memory.h"

namespace xloops {

/** LPSU configuration (paper Table III + Section IV-F DSE knobs). */
struct LpsuConfig
{
    unsigned lanes = 4;
    unsigned ibEntries = 128;       ///< instruction buffer capacity
    unsigned idqDepth = 4;          ///< per-lane index queue entries
    unsigned lsqLoadEntries = 8;
    unsigned lsqStoreEntries = 8;
    unsigned cibDepth = 4;          ///< cross-iteration buffer slots/CIR
    unsigned memPorts = 1;          ///< shared data-memory ports
    unsigned llfus = 1;             ///< shared long-latency FUs
    unsigned laneIssueWidth = 1;    ///< superscalar in-order lanes
                                    ///< (extension; paper future work)
    bool multithreading = false;    ///< 2-way vertical MT (uc only)
    bool interLaneForwarding = false; ///< aggressive cross-lane ld fwd
    unsigned scanCyclesPerInst = 1;
    unsigned scanOverheadCycles = 8;
    unsigned branchBubble = 1;      ///< taken-branch penalty in a lane

    // --- Robustness / graceful degradation ---------------------------

    /** Adversarial-schedule fault injection (disabled by default). */
    FaultConfig faults;

    /** No-commit watchdog: abort with a machine-state snapshot when no
     *  iteration commits for this many cycles (0 disables). */
    Cycle watchdogCycles = 1'000'000;

    /** Squash-storm detector: more than stormThreshold squashes inside
     *  a sliding stormWindow-cycle window serializes the lanes for an
     *  exponentially backed-off period; after maxStorms storms the
     *  LPSU abandons the loop and falls back to traditional execution
     *  at iteration granularity (the paper's always-correct escape
     *  hatch, now an explicit stat-counted mechanism). */
    unsigned stormWindow = 512;
    unsigned stormThreshold = 48;
    Cycle stormBackoffCycles = 128;  ///< first serialization period
    unsigned maxStorms = 3;          ///< storms before traditional fallback
};

/** Why the LPSU handed a loop back to the GPP before the bound. */
enum class FallbackReason : u8
{
    None,          ///< ran to the (possibly capped) bound
    BodyTooLarge,  ///< body exceeds the instruction buffers (static)
    SquashStorm,   ///< persistent squash storm: degrade to traditional
};

/** Result of one specialized xloop execution. */
struct LpsuResult
{
    bool fellBack = false;      ///< caller must continue the loop
                                ///< traditionally (see reason)
    FallbackReason reason = FallbackReason::None;
    Cycle scanCycles = 0;
    Cycle execCycles = 0;
    u64 iterations = 0;         ///< iterations executed (and committed)
    u64 laneInsts = 0;
    u64 squashes = 0;
    i32 finalIdx = 0;           ///< loop index to hand back to the GPP
    i32 finalBound = 0;         ///< bound (grows for *.db loops)
    bool boundReached = true;   ///< false when maxIters capped the run
};

/** Static information the LMU derives during the scan phase. */
struct ScanInfo
{
    Addr bodyStart = 0;
    Addr bodyEnd = 0;           ///< address of the xloop instruction
    std::vector<Instruction> body;
    LoopPattern pattern = LoopPattern::UC;
    bool dynamicBound = false;
    bool dataDepExit = false;   ///< extension: boundReg is an exit flag
    RegId idxReg = 0;
    RegId boundReg = 0;
    std::array<bool, numArchRegs> isCir{};
    std::array<Addr, numArchRegs> lastCirWritePc{};
    std::array<bool, numArchRegs> earlyPushOk{};
    std::array<bool, numArchRegs> isMiv{};
    std::array<i32, numArchRegs> mivInc{};
    unsigned numLiveIns = 0;
    unsigned numCirs = 0;

    bool ordersMemory() const
    {
        return pattern == LoopPattern::OM || pattern == LoopPattern::ORM ||
               pattern == LoopPattern::UA;
    }
    bool ordersRegisters() const
    {
        return pattern == LoopPattern::OR || pattern == LoopPattern::ORM;
    }
};

/**
 * Analyze the loop body of the xloop at @p xloopPc.
 * Exposed separately so compiler tests and the adaptive controller can
 * reuse the LMU's static analysis.
 */
ScanInfo scanXloop(const Program &prog, Addr xloopPc,
                   const RegFile &liveIns);

class Lpsu
{
  public:
    Lpsu(const LpsuConfig &config, MainMemory &memory, L1Cache &dcache);

    /**
     * Specialized execution of the xloop at @p xloopPc.
     *
     * On entry @p liveIns holds the GPP architectural state at the
     * xloop instruction; the GPP has just finished iteration
     * liveIns[idxReg]. The LPSU executes iterations
     * [idx+1, min(bound, idx+1+maxIters)) and updates memory, CIR
     * values, and (for *.db) the bound in @p liveIns.
     *
     * @param maxIters cap for adaptive profiling (default: unlimited)
     * @param traceBase absolute cycle the LPSU took ownership (trace
     *                  events are stamped on the system timeline)
     */
    LpsuResult execute(const Program &prog, Addr xloopPc, RegFile &liveIns,
                       u64 maxIters = ~u64{0}, Cycle traceBase = 0);

    const LpsuConfig &config() const { return cfg; }
    StatGroup &stats() { return statGroup; }
    const StatGroup &stats() const { return statGroup; }

    /** True when the pc was already resident in the instruction
     *  buffers (scan can skip re-writing instructions). */
    bool isResident(Addr xloopPc) const { return residentPc == xloopPc; }

    /** Forget buffered instructions and statistics (new run). Also
     *  re-seeds the fault injector so runs are reproducible. */
    void
    reset()
    {
        residentPc = ~Addr{0};
        statGroup.clear();
        injector = FaultInjector(cfg.faults);
    }

    /** The fault injector (for tests / tools inspecting injection). */
    const FaultInjector &faultInjector() const { return injector; }

    /** Stream loop-level events (scan, iterations, squashes, exits)
     *  to @p out; nullptr disables. */
    void setTrace(std::ostream *out) { traceOut = out; }

    /** Emit structured trace events to @p t; nullptr disables. */
    void setTracer(Tracer *t) { tracer = t; }

    /** Roll per-loop statistics up into @p p; nullptr disables. */
    void setProfiler(LoopProfiler *p) { profiler = p; }

    /** Checkpoint capture/restore of buffer residency, statistics and
     *  the fault injector's RNG streams. */
    void saveState(JsonWriter &w) const;
    void loadState(const JsonValue &v);

  private:
    LpsuConfig cfg;
    MainMemory &mem;
    L1Cache &dcache;
    StatGroup statGroup;
    FaultInjector injector;
    Addr residentPc = ~Addr{0};
    std::ostream *traceOut = nullptr;
    Tracer *tracer = nullptr;
    LoopProfiler *profiler = nullptr;
};

} // namespace xloops

#endif // XLOOPS_LPSU_LPSU_H
