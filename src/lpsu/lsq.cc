#include "lpsu/lsq.h"

#include "common/log.h"
#include "mem/memory.h"

namespace xloops {

namespace {

bool
overlaps(Addr a, unsigned as, Addr b, unsigned bs)
{
    return a < b + bs && b < a + as;
}

} // namespace

bool
LaneLsq::pushStore(Addr addr, unsigned size, u32 value)
{
    if (storesFull())
        return false;
    stores.push_back({addr, size, value});
    return true;
}

bool
LaneLsq::pushLoad(Addr addr, unsigned size, u32 value)
{
    if (loadsFull())
        return false;
    loads.push_back({addr, size, value});
    return true;
}

bool
LaneLsq::fullyCovered(Addr addr, unsigned size) const
{
    for (unsigned i = 0; i < size; i++) {
        const Addr byte = addr + i;
        bool covered = false;
        for (const auto &st : stores) {
            if (byte >= st.addr && byte < st.addr + st.size) {
                covered = true;
                break;
            }
        }
        if (!covered)
            return false;
    }
    return true;
}

u32
LaneLsq::coveredRead(MainMemory &mem, Addr addr, unsigned size) const
{
    u32 value = 0;
    for (unsigned i = 0; i < size; i++) {
        const Addr byte = addr + i;
        u8 b = static_cast<u8>(mem.read(byte, 1));
        // Later stores win: scan in program order.
        for (const auto &st : stores) {
            if (byte >= st.addr && byte < st.addr + st.size)
                b = static_cast<u8>(st.value >> (8 * (byte - st.addr)));
        }
        value |= static_cast<u32>(b) << (8 * i);
    }
    return value;
}

bool
LaneLsq::loadOverlaps(Addr addr, unsigned size) const
{
    for (const auto &ld : loads)
        if (overlaps(ld.addr, ld.size, addr, size))
            return true;
    return false;
}

bool
LaneLsq::loadsWouldChange(MainMemory &mem, Addr addr, unsigned size) const
{
    for (const auto &ld : loads) {
        if (!overlaps(ld.addr, ld.size, addr, size))
            continue;
        if (coveredRead(mem, ld.addr, ld.size) != ld.value)
            return true;
    }
    return false;
}

LsqAccess
LaneLsq::popOldestStore()
{
    XL_ASSERT(!stores.empty(), "draining empty store queue");
    const LsqAccess access = stores.front();
    stores.erase(stores.begin());
    return access;
}

void
LaneLsq::clear()
{
    loads.clear();
    stores.clear();
}

} // namespace xloops
