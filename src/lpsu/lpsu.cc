#include "lpsu/lpsu.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/json.h"
#include "common/log.h"
#include "common/sim_error.h"

namespace xloops {

// ---------------------------------------------------------------------
// Scan-phase static analysis (the LMU's bit-vector bookkeeping).
// ---------------------------------------------------------------------

ScanInfo
scanXloop(const Program &prog, Addr xloopPc, const RegFile &liveIns)
{
    const DecodedProgram &dec = prog.decoded();
    const Instruction &xl = dec.fetch(xloopPc);
    if (!xl.isXloop())
        panic("scanXloop on a non-xloop instruction");

    ScanInfo si;
    si.pattern = xl.pattern();
    si.dynamicBound = xl.isDynamicBound();
    si.dataDepExit = xl.isDataDepExit();
    si.idxReg = xl.rd;
    si.boundReg = xl.rs1;
    si.bodyEnd = xloopPc;
    si.bodyStart = static_cast<Addr>(
        static_cast<i64>(xloopPc) + i64{xl.imm} * 4);

    for (Addr pc = si.bodyStart; pc < si.bodyEnd; pc += 4)
        si.body.push_back(dec.fetch(pc));

    // MIVT: collect xi instructions first so their registers are
    // excluded from CIR detection. addu.xi increments by a
    // loop-invariant register read from the live-in register file.
    for (const Instruction &inst : si.body) {
        if (inst.op == Op::ADDIU_XI) {
            si.isMiv[inst.rd] = true;
            si.mivInc[inst.rd] = inst.imm;
        } else if (inst.op == Op::ADDU_XI) {
            si.isMiv[inst.rd] = true;
            si.mivInc[inst.rd] = static_cast<i32>(liveIns.get(inst.rs2));
        }
    }

    // Read-before-write / written bit-vectors in static program order.
    std::array<bool, numArchRegs> readFirst{};
    std::array<bool, numArchRegs> written{};
    for (const Instruction &inst : si.body) {
        RegId srcs[2];
        const unsigned n = inst.srcRegs(srcs);
        for (unsigned i = 0; i < n; i++) {
            if (srcs[i] != 0 && !written[srcs[i]])
                readFirst[srcs[i]] = true;
        }
        const RegId dst = inst.destReg();
        if (dst < numArchRegs)
            written[dst] = true;
    }

    for (unsigned r = 1; r < numArchRegs; r++) {
        if (readFirst[r])
            si.numLiveIns++;
        const bool excluded = r == si.idxReg || r == si.boundReg ||
                              si.isMiv[r];
        if (readFirst[r] && written[r] && !excluded) {
            si.isCir[r] = true;
            si.numCirs++;
        }
    }

    // Last static write per CIR, and whether pushing the CIB value at
    // that instruction is safe (no backward branch can re-execute it).
    for (size_t i = 0; i < si.body.size(); i++) {
        const Instruction &inst = si.body[i];
        const RegId dst = inst.destReg();
        const Addr pc = si.bodyStart + static_cast<Addr>(4 * i);
        if (dst < numArchRegs && si.isCir[dst])
            si.lastCirWritePc[dst] = pc;
    }
    for (unsigned r = 1; r < numArchRegs; r++) {
        if (!si.isCir[r])
            continue;
        si.earlyPushOk[r] = true;
        for (size_t i = 0; i < si.body.size(); i++) {
            const Instruction &inst = si.body[i];
            if (!inst.isBranch() && !inst.isXloop())
                continue;
            const Addr pc = si.bodyStart + static_cast<Addr>(4 * i);
            const Addr target = static_cast<Addr>(
                static_cast<i64>(pc) + i64{inst.imm} * 4);
            // A backward edge crossing the last write re-executes it.
            if (pc >= si.lastCirWritePc[r] && target <= si.lastCirWritePc[r])
                si.earlyPushOk[r] = false;
        }
    }
    return si;
}

// ---------------------------------------------------------------------
// Run-time structures.
// ---------------------------------------------------------------------

namespace {

/** One slot of a cross-iteration buffer. */
struct CibSlot
{
    i64 iter;
    u32 value;
};

/** CIB channel from lane (i-1+N)%N into lane i, one queue per CIR. */
struct Cib
{
    unsigned depth = 4;
    std::array<std::deque<CibSlot>, numArchRegs> perReg;

    bool full(RegId r) const { return perReg[r].size() >= depth; }

    void
    push(RegId r, i64 iter, u32 value)
    {
        XL_ASSERT(!full(r), "CIB overflow");
        perReg[r].push_back({iter, value});
    }

    std::optional<u32>
    consume(RegId r, i64 iter)
    {
        auto &q = perReg[r];
        if (!q.empty() && q.front().iter == iter - 1) {
            const u32 value = q.front().value;
            q.pop_front();
            return value;
        }
        return std::nullopt;
    }
};

/** Why a context could not issue this cycle (Figure 6 categories).
 *  The taxonomy lives in common/trace.h so the trace, the per-loop
 *  profiler, and these counters agree exactly. */
using Stall = StallKind;

const char *
stallCounter(Stall s)
{
    switch (s) {
      case Stall::Idle: return "lane_idle_cycles";
      case Stall::Raw: return "lane_raw_stall_cycles";
      case Stall::Cir: return "lane_cir_stall_cycles";
      case Stall::CibFull: return "lane_cib_stall_cycles";
      case Stall::MemPort: return "lane_memport_stall_cycles";
      case Stall::Llfu: return "lane_llfu_stall_cycles";
      case Stall::LsqFull: return "lane_lsq_stall_cycles";
      case Stall::CommitWait: return "lane_commit_stall_cycles";
      case Stall::AmoWait: return "lane_amo_stall_cycles";
      case Stall::None: break;
    }
    return "lane_other_stall_cycles";
}

/** One hardware thread context within a lane. */
struct Context
{
    Context(unsigned load_entries, unsigned store_entries)
        : lsq(load_entries, store_entries)
    {}

    bool active = false;
    i64 iter = 0;
    Addr pc = 0;
    RegFile regs;
    RegFile snapshot;
    std::array<Cycle, numArchRegs> regReady{};
    Cycle busyUntil = 0;
    std::array<bool, numArchRegs> cirConsumed{};
    std::array<bool, numArchRegs> cirPushed{};
    std::array<bool, numArchRegs> cirWritten{};
    std::array<i64, numArchRegs> mivLastIter{};
    LaneLsq lsq;
    bool bodyDone = false;
    Cycle iterStart = 0;
    u64 iterInsts = 0;
    unsigned overflowSquashes = 0;  ///< LSQ-overflow retries this iter
    Stall lastStall = Stall::None;  ///< for machine-state snapshots
    unsigned laneIdx = 0;           ///< owning lane (trace track id)
    bool pendingReplay = false;     ///< squashed; Replay event on
                                    ///< next issued instruction
};

/** MemIface routing a lane's accesses directly or through its LSQ. */
class LaneMem : public MemIface
{
  public:
    MainMemory *mem = nullptr;
    LaneLsq *lsq = nullptr;
    bool buffered = false;   ///< speculative: route through the LSQ
    bool crossLane = false;  ///< compose older lanes' stores too
    const std::vector<const LaneLsq *> *olderLsqs = nullptr;
    u32 lastLoadValue = 0;
    bool overflowed = false; ///< a buffered store found the LSQ full:
                             ///< the lane must squash-and-retry

    u32
    read(Addr addr, unsigned size) override
    {
        if (!buffered)
            return mem->read(addr, size);
        u32 value;
        if (crossLane && olderLsqs && !olderLsqs->empty()) {
            // Compose: memory, then older iterations' stores in
            // iteration order, then our own stores.
            value = 0;
            for (unsigned i = 0; i < size; i++) {
                u8 b = static_cast<u8>(mem->read(addr + i, 1));
                for (const LaneLsq *other : *olderLsqs) {
                    const u32 v = other->coveredRead(*mem, addr + i, 1);
                    if (other->fullyCovered(addr + i, 1))
                        b = static_cast<u8>(v);
                }
                value |= static_cast<u32>(b) << (8 * i);
            }
            // Own stores override everything older.
            for (unsigned i = 0; i < size; i++) {
                if (lsq->fullyCovered(addr + i, 1)) {
                    value &= ~(0xffu << (8 * i));
                    value |= lsq->coveredRead(*mem, addr + i, 1) << (8 * i);
                }
            }
        } else {
            value = lsq->coveredRead(*mem, addr, size);
        }
        lastLoadValue = value;
        return value;
    }

    void
    write(Addr addr, unsigned size, u32 value) override
    {
        if (buffered) {
            // Capacity pressure is a structural stall, not a panic:
            // the engine squashes and retries the iteration (its
            // architectural effects are still fully buffered).
            if (!lsq->pushStore(addr, size, value))
                overflowed = true;
        } else {
            mem->write(addr, size, value);
        }
    }

    u32
    amo(Op op, Addr addr, u32 operand) override
    {
        XL_ASSERT(!buffered, "speculative lane executed an AMO");
        return mem->amo(op, addr, operand);
    }
};

// ---------------------------------------------------------------------
// The specialized-execution engine. One instance per xloop execution.
// ---------------------------------------------------------------------

constexpr Cycle lpsuCycleLimit = 2'000'000'000;

/** A store-address broadcast delayed in the network (injected). */
struct PendingBroadcast
{
    Addr addr;
    unsigned size;
    i64 iter;
    Cycle fire;
};

class LpsuEngine
{
  public:
    LpsuEngine(const LpsuConfig &config, MainMemory &memory,
               L1Cache &dcache_model, StatGroup &stat_group,
               FaultInjector &fault_injector, const ScanInfo &scan_info,
               RegFile &live_ins, i64 start_idx, i64 initial_bound,
               u64 max_iters, std::ostream *trace_out, Tracer *tracer,
               LoopProfile *loop_profile, Cycle abs_base);

    LpsuResult run();

  private:
    struct Lane
    {
        std::vector<Context> ctxs;
        std::vector<i64> laneNextIter;  // ordered dispatch (1 entry)
        unsigned rr = 0;                // MT round-robin pointer
    };

    i64 effBound() const;
    bool orderedDispatch() const { return si.pattern != LoopPattern::UC; }
    bool done() const;
    void seedCibs();

    /** Engine cycle on the absolute system timeline (trace stamps). */
    Cycle absCycle() const { return absBase + cycle; }

    /** Per-cycle observer work: lane stall-slice transitions, per-loop
     *  stall attribution, occupancy histograms. Timing-neutral. */
    void observeLaneCycle(unsigned lane_idx, Stall outcome);
    void observeOccupancy();
    void flushStallSlices();

    void activate(Lane &lane, Context &ctx, i64 iter);
    std::optional<i64> nextIterFor(unsigned lane_idx);
    Stall tickContext(unsigned lane_idx, Context &ctx);
    Stall execInst(unsigned lane_idx, Context &ctx);
    bool drainUnreadCirs(unsigned lane_idx, Context &ctx, Stall &stall);
    bool finishBody(unsigned lane_idx, Context &ctx, Stall &stall);
    void completeIteration(Context &ctx);
    void broadcastStore(Addr addr, unsigned size, i64 store_iter);
    void deliverBroadcast(Addr addr, unsigned size, i64 store_iter);
    void flushPendingBroadcasts();
    void squash(Context &ctx);
    void noteSquash();
    void beginStormFallback();
    void capDispatchForMigration();
    void injectFaultsThisCycle();
    MachineSnapshot snapshotState(const std::string &context) const;
    bool llfuRequest(const Instruction &inst);
    Cib &cibIn(unsigned lane_idx) { return cibs[lane_idx]; }
    Cib &cibOut(unsigned lane_idx)
    {
        return cibs[(lane_idx + 1) % cfg.lanes];
    }
    void pushCir(unsigned lane_idx, Context &ctx, RegId reg, u32 value);

    const LpsuConfig &cfg;
    MainMemory &mem;
    L1Cache &dcache;
    StatGroup &stats;
    FaultInjector &inj;
    const ScanInfo &si;
    RegFile &liveIns;
    std::ostream *trace = nullptr;
    Tracer *tr = nullptr;
    LoopProfile *prof = nullptr;
    Cycle absBase = 0;

    /** Per-lane open stall interval (for LaneStall trace slices). */
    struct StallObs
    {
        Stall kind = Stall::None;
        Cycle since = 0;
    };
    std::vector<StallObs> laneObs;

    i64 startIdx;
    i64 bound;
    u64 maxIters;

    std::vector<Lane> lanes;
    std::vector<Cib> cibs;
    std::vector<Cycle> llfuFree;
    unsigned memPortsLeft = 0;
    Cycle cycle = 0;

    i64 nextDispatch;       // uc central counter
    i64 nextToCommit;       // ordered patterns
    u64 completed = 0;
    u64 laneInsts = 0;
    u64 squashes = 0;
    u32 exitFlag = 0;   ///< data-dependent exit value (0 = no exit)
    bool dualEligible = false;  ///< last action allows same-cycle issue
    std::array<u32, numArchRegs> finalCir{};
    std::array<bool, numArchRegs> finalCirValid{};

    // --- Robustness state --------------------------------------------
    Cycle lastCommitCycle = 0;       ///< watchdog progress marker
    std::deque<Cycle> squashWindow;  ///< squash times (storm detector)
    unsigned stormCount = 0;
    Cycle serializedUntil = 0;       ///< lanes serialized through here
    bool stormFallbackPending = false;
    bool stormFellBack = false;
    bool migratePending = false;
    std::optional<i64> dispatchCap;  ///< migration / fallback bound cap
    std::vector<PendingBroadcast> pendingBroadcasts;
};

LpsuEngine::LpsuEngine(const LpsuConfig &config, MainMemory &memory,
                       L1Cache &dcache_model, StatGroup &stat_group,
                       FaultInjector &fault_injector,
                       const ScanInfo &scan_info, RegFile &live_ins,
                       i64 start_idx, i64 initial_bound, u64 max_iters,
                       std::ostream *trace_out, Tracer *tracer,
                       LoopProfile *loop_profile, Cycle abs_base)
    : cfg(config), mem(memory), dcache(dcache_model), stats(stat_group),
      inj(fault_injector), si(scan_info), liveIns(live_ins),
      trace(trace_out), tr(tracer), prof(loop_profile), absBase(abs_base),
      laneObs(cfg.lanes),
      startIdx(start_idx), bound(initial_bound), maxIters(max_iters),
      cibs(cfg.lanes), llfuFree(cfg.llfus, 0),
      nextDispatch(start_idx), nextToCommit(start_idx)
{
    const bool mt = cfg.multithreading && si.pattern == LoopPattern::UC;
    const unsigned ctxsPerLane = mt ? 2 : 1;
    lanes.resize(cfg.lanes);
    for (unsigned l = 0; l < cfg.lanes; l++) {
        Lane &lane = lanes[l];
        for (unsigned c = 0; c < ctxsPerLane; c++) {
            lane.ctxs.emplace_back(cfg.lsqLoadEntries, cfg.lsqStoreEntries);
            Context &ctx = lane.ctxs.back();
            ctx.regs = liveIns;
            ctx.snapshot = liveIns;
            ctx.laneIdx = l;
            for (unsigned r = 0; r < numArchRegs; r++)
                ctx.mivLastIter[r] = startIdx - 1;  // GPP ran iter idx0
        }
        lane.laneNextIter.push_back(startIdx + l);
    }
    for (auto &cib : cibs)
        cib.depth = cfg.cibDepth;
    seedCibs();
}

i64
LpsuEngine::effBound() const
{
    i64 b = bound;
    if (maxIters < static_cast<u64>(1) << 60)
        b = std::min(b, startIdx + static_cast<i64>(maxIters));
    if (dispatchCap)
        b = std::min(b, *dispatchCap);
    return b;
}

void
LpsuEngine::seedCibs()
{
    if (!si.ordersRegisters())
        return;
    // Iteration startIdx (on lane 0) consumes values produced by the
    // GPP's iteration startIdx-1: they are the live-in CIR values.
    for (unsigned r = 1; r < numArchRegs; r++) {
        if (si.isCir[r])
            cibIn(0).push(static_cast<RegId>(r), startIdx - 1,
                          liveIns.get(static_cast<RegId>(r)));
    }
}

bool
LpsuEngine::done() const
{
    for (const auto &lane : lanes)
        for (const auto &ctx : lane.ctxs)
            if (ctx.active)
                return false;
    if (orderedDispatch())
        return nextToCommit >= effBound();
    return nextDispatch >= effBound();
}

std::optional<i64>
LpsuEngine::nextIterFor(unsigned lane_idx)
{
    if (orderedDispatch()) {
        i64 &next = lanes[lane_idx].laneNextIter[0];
        if (next >= effBound())
            return std::nullopt;
        const i64 iter = next;
        next += cfg.lanes;
        return iter;
    }
    if (nextDispatch >= effBound())
        return std::nullopt;
    return nextDispatch++;
}

void
LpsuEngine::activate(Lane &lane, Context &ctx, i64 iter)
{
    (void)lane;
    ctx.active = true;
    ctx.iter = iter;
    ctx.pc = si.bodyStart;
    ctx.bodyDone = false;
    ctx.cirConsumed.fill(false);
    ctx.cirPushed.fill(false);
    ctx.cirWritten.fill(false);
    ctx.iterStart = cycle;
    ctx.iterInsts = 0;

    ctx.regs.set(si.idxReg, static_cast<u32>(iter));
    ctx.regReady[si.idxReg] = cycle + 1;
    if (si.dataDepExit) {
        // The exit flag is cleared per iteration; the LMU samples it
        // at commit.
        ctx.regs.set(si.boundReg, 0);
        ctx.regReady[si.boundReg] = cycle + 1;
    }

    // MIV fix-up: jump each mutual induction variable forward by the
    // iteration-index delta (the paper's narrow multiply).
    for (unsigned r = 1; r < numArchRegs; r++) {
        if (!si.isMiv[r])
            continue;
        const i64 delta = iter - ctx.mivLastIter[r] - 1;
        ctx.regs.set(static_cast<RegId>(r),
                     ctx.regs.get(static_cast<RegId>(r)) +
                         static_cast<u32>(si.mivInc[r] * delta));
        ctx.mivLastIter[r] = iter;
        ctx.regReady[r] = cycle + 1;
        stats.add("miv_fixups");
    }

    ctx.snapshot = ctx.regs;
    ctx.busyUntil = cycle + 1;  // activation occupies the issue slot
    ctx.overflowSquashes = 0;
    ctx.pendingReplay = false;
    XTRACE(tr, absCycle(), TraceComp::Lane, ctx.laneIdx,
           TraceKind::IterBegin, iter, 0);
    stats.add("idq_pops");
}

void
LpsuEngine::pushCir(unsigned lane_idx, Context &ctx, RegId reg, u32 value)
{
    cibOut(lane_idx).push(reg, ctx.iter, value);
    ctx.cirPushed[reg] = true;
    finalCir[reg] = value;
    finalCirValid[reg] = true;
    stats.add("cib_pushes");
    XTRACE(tr, absCycle(), TraceComp::Cib, lane_idx, TraceKind::CibPush,
           static_cast<i64>(reg), ctx.iter);
}

void
LpsuEngine::completeIteration(Context &ctx)
{
    const Cycle iterDur = cycle >= ctx.iterStart ? cycle - ctx.iterStart : 0;
    stats.sample("iter_cycles", iterDur);
    if (prof)
        prof->iterCycles.sample(iterDur);
    XTRACE(tr, absCycle(), TraceComp::Lane, ctx.laneIdx, TraceKind::IterEnd,
           ctx.iter, static_cast<i64>(iterDur));
    XTRACE(tr, absCycle(), TraceComp::Lmu, 0, TraceKind::Commit,
           ctx.iter, 0);
    ctx.active = false;
    ctx.bodyDone = false;
    ctx.lsq.clear();
    ctx.overflowSquashes = 0;
    completed++;
    lastCommitCycle = cycle;
    // Injected mid-loop migration: hand the loop back to the GPP at an
    // iteration boundary (processed at the top of the next cycle so
    // the dispatch cap covers everything already handed out).
    if (inj.enabled() && inj.triggerMigration())
        migratePending = true;
    if (trace) {
        *trace << "[lpsu] iteration " << ctx.iter << " "
               << (si.ordersMemory() ? "committed" : "completed")
               << " @ cycle " << cycle << "\n";
    }
    // or-pattern iterations may complete out of order (memory-port
    // starvation can delay a lower iteration past a higher one), so
    // the high-water mark must never regress. om/orm/ua commits are
    // strictly ordered and hit the max() trivially.
    if (orderedDispatch())
        nextToCommit = std::max(nextToCommit, ctx.iter + 1);
    stats.add("iterations");
}

void
LpsuEngine::broadcastStore(Addr addr, unsigned size, i64 store_iter)
{
    // Injected network delay: the broadcast reaches consumers a few
    // cycles late. Correctness is preserved because every pending
    // broadcast is flushed before any younger iteration commits
    // (see finishBody), so a violation can be detected late but
    // never escape.
    if (inj.enabled()) {
        const Cycle delay = inj.broadcastDelay();
        if (delay > 0) {
            pendingBroadcasts.push_back(
                {addr, size, store_iter, cycle + delay});
            stats.add("injected_broadcast_delays");
            return;
        }
    }
    deliverBroadcast(addr, size, store_iter);
}

void
LpsuEngine::flushPendingBroadcasts()
{
    while (!pendingBroadcasts.empty()) {
        const PendingBroadcast pb = pendingBroadcasts.front();
        pendingBroadcasts.erase(pendingBroadcasts.begin());
        deliverBroadcast(pb.addr, pb.size, pb.iter);
    }
}

void
LpsuEngine::deliverBroadcast(Addr addr, unsigned size, i64 store_iter)
{
    stats.add("store_broadcasts");
    XTRACE(tr, absCycle(), TraceComp::Lmu, 0, TraceKind::StoreBroadcast,
           static_cast<i64>(addr), store_iter);
    i64 firstSquashed = std::numeric_limits<i64>::max();
    for (auto &lane : lanes) {
        for (auto &ctx : lane.ctxs) {
            if (!ctx.active || ctx.iter <= store_iter)
                continue;
            if (!ctx.lsq.loadOverlaps(addr, size))
                continue;
            if (cfg.interLaneForwarding) {
                // Aggressive design: cross-lane forwarding usually
                // read the right value already, so squash only when
                // re-reading now (against the just-performed store)
                // would actually change an observed value.
                if (ctx.lsq.loadsWouldChange(mem, addr, size)) {
                    squash(ctx);
                    firstSquashed = std::min(firstSquashed, ctx.iter);
                } else {
                    stats.add("squashes_filtered");
                }
            } else {
                squash(ctx);
            }
        }
    }
    // Cascaded squash: with cross-lane forwarding, a squashed
    // iteration's buffered stores may already have been forwarded to
    // even-younger iterations, so everything beyond the first squash
    // must restart too (the classic TLS dependence-chain squash).
    if (cfg.interLaneForwarding &&
        firstSquashed != std::numeric_limits<i64>::max()) {
        for (auto &lane : lanes) {
            for (auto &ctx : lane.ctxs) {
                if (ctx.active && ctx.iter > firstSquashed) {
                    squash(ctx);
                    stats.add("cascade_squashes");
                }
            }
        }
    }
}

void
LpsuEngine::squash(Context &ctx)
{
    squashes++;
    if (trace) {
        *trace << "[lpsu] squash iteration " << ctx.iter
               << " @ cycle " << cycle << "\n";
    }
    stats.add("squashes");
    stats.add("squash_cycles", cycle > ctx.iterStart
                                   ? cycle - ctx.iterStart : 0);
    stats.add("squashed_insts", ctx.iterInsts);
    if (prof)
        prof->squashes++;
    XTRACE(tr, absCycle(), TraceComp::Lane, ctx.laneIdx, TraceKind::Squash,
           ctx.iter, static_cast<i64>(cycle > ctx.iterStart
                                          ? cycle - ctx.iterStart : 0));
    ctx.pendingReplay = true;
    ctx.regs = ctx.snapshot;
    ctx.regReady.fill(cycle + 1);
    ctx.lsq.clear();
    ctx.pc = si.bodyStart;
    ctx.bodyDone = false;
    ctx.cirPushed.fill(false);
    ctx.cirWritten.fill(false);
    ctx.iterStart = cycle;
    ctx.iterInsts = 0;
    ctx.busyUntil = cycle + 1;
    noteSquash();
}

/**
 * Squash-storm detector: when squashes cluster inside a sliding
 * window, speculation is clearly wasting work — serialize the lanes
 * (only the committing iteration runs) for an exponentially
 * backed-off period, and past maxStorms storms abandon the loop and
 * degrade to traditional execution at iteration granularity.
 */
void
LpsuEngine::noteSquash()
{
    if (cfg.stormThreshold == 0)
        return;
    squashWindow.push_back(cycle);
    while (!squashWindow.empty() &&
           squashWindow.front() + cfg.stormWindow < cycle)
        squashWindow.pop_front();
    if (squashWindow.size() < cfg.stormThreshold)
        return;
    squashWindow.clear();
    stormCount++;
    stats.add("lpsu_storm_serializations");
    const unsigned shift = std::min(stormCount - 1, 8u);
    serializedUntil = cycle + (cfg.stormBackoffCycles << shift);
    XTRACE(tr, absCycle(), TraceComp::Lmu, 0, TraceKind::StormSerialize,
           static_cast<i64>(stormCount),
           static_cast<i64>(absBase + serializedUntil));
    if (trace) {
        *trace << "[lpsu] squash storm " << stormCount
               << ": serializing lanes until cycle " << serializedUntil
               << "\n";
    }
    if (stormCount > cfg.maxStorms)
        stormFallbackPending = true;
}

/**
 * Storm fallback: let the committing iteration finish, cancel every
 * speculative iteration (their stores never left the LSQs), and cap
 * dispatch so the engine drains and hands back a contiguous prefix.
 * The GPP resumes the loop traditionally from the handed-back index.
 */
void
LpsuEngine::beginStormFallback()
{
    stormFallbackPending = false;
    stormFellBack = true;
    stats.add("lpsu_fallbacks");
    if (prof)
        prof->fallbacks++;
    i64 cap = nextToCommit;
    for (auto &lane : lanes)
        for (auto &ctx : lane.ctxs)
            if (ctx.active && ctx.iter == nextToCommit)
                cap = nextToCommit + 1;
    for (auto &lane : lanes) {
        for (auto &ctx : lane.ctxs) {
            if (ctx.active && ctx.iter >= cap) {
                ctx.active = false;
                ctx.bodyDone = false;
                ctx.lsq.clear();
                stats.add("cancelled_iterations");
            }
        }
    }
    dispatchCap = dispatchCap ? std::min(*dispatchCap, cap) : cap;
    XTRACE(tr, absCycle(), TraceComp::Lmu, 0, TraceKind::StormFallback,
           cap, 0);
    if (trace) {
        *trace << "[lpsu] squash storm persists: falling back to "
               << "traditional execution at iteration " << cap
               << " @ cycle " << cycle << "\n";
    }
}

/**
 * Migration (injected or future adaptive re-profiling): stop handing
 * out iterations past a cap that covers everything already
 * dispatched, so completed work forms a contiguous prefix and the
 * hand-back state is architecturally exact.
 */
void
LpsuEngine::capDispatchForMigration()
{
    migratePending = false;
    if (dispatchCap)
        return;
    i64 cap;
    if (orderedDispatch()) {
        cap = nextToCommit;
        for (const auto &lane : lanes)
            cap = std::max(cap, lane.laneNextIter[0]);
    } else {
        cap = nextDispatch;
    }
    if (cap >= effBound())
        return;  // nothing left to cut off
    dispatchCap = cap;
    stats.add("injected_migrations");
    XTRACE(tr, absCycle(), TraceComp::Lmu, 0, TraceKind::Migration, cap, 0);
    if (trace) {
        *trace << "[lpsu] injected migration: dispatch capped at "
               << "iteration " << cap << " @ cycle " << cycle << "\n";
    }
}

/** Per-cycle fault processing: matured broadcasts, forced squashes. */
void
LpsuEngine::injectFaultsThisCycle()
{
    for (size_t i = 0; i < pendingBroadcasts.size();) {
        if (pendingBroadcasts[i].fire <= cycle) {
            const PendingBroadcast pb = pendingBroadcasts[i];
            pendingBroadcasts.erase(pendingBroadcasts.begin() +
                                    static_cast<long>(i));
            deliverBroadcast(pb.addr, pb.size, pb.iter);
        } else {
            i++;
        }
    }
    // Forced squashes hit only speculative contexts of memory-ordered
    // patterns — exactly the set real dependence violations can hit —
    // so rollback is always architecturally safe.
    if (!si.ordersMemory())
        return;
    for (auto &lane : lanes) {
        for (auto &ctx : lane.ctxs) {
            if (ctx.active && ctx.iter != nextToCommit &&
                inj.forceSquash()) {
                stats.add("injected_squashes");
                XTRACE(tr, absCycle(), TraceComp::Lmu, 0,
                       TraceKind::FaultInject, ctx.iter, 0);
                squash(ctx);
            }
        }
    }
}

MachineSnapshot
LpsuEngine::snapshotState(const std::string &context) const
{
    MachineSnapshot s;
    s.context = context;
    s.cycle = cycle;
    s.committedIters = completed;
    s.nextToCommit = nextToCommit;
    s.nextDispatch = nextDispatch;
    s.effectiveBound = effBound();
    s.memPortsLeft = memPortsLeft;
    for (unsigned l = 0; l < lanes.size(); l++) {
        for (unsigned c = 0; c < lanes[l].ctxs.size(); c++) {
            const Context &ctx = lanes[l].ctxs[c];
            LaneSnapshot ls;
            ls.lane = l;
            ls.ctx = c;
            ls.active = ctx.active;
            ls.iter = ctx.iter;
            ls.pc = ctx.pc;
            ls.bodyDone = ctx.bodyDone;
            ls.busyUntil = ctx.busyUntil;
            ls.lsqLoads = ctx.lsq.numLoads();
            ls.lsqStores = ctx.lsq.numStores();
            ls.lastStall = stallKindName(ctx.lastStall);
            s.lanes.push_back(ls);
        }
        if (orderedDispatch()) {
            s.occupancy.emplace_back(
                strf("idq[lane", l, "].nextIter"),
                static_cast<u64>(lanes[l].laneNextIter[0]));
        }
    }
    for (unsigned l = 0; l < cibs.size(); l++) {
        for (unsigned r = 1; r < numArchRegs; r++) {
            if (!cibs[l].perReg[r].empty()) {
                s.occupancy.emplace_back(
                    strf("cib[lane", l, "][r", r, "]"),
                    cibs[l].perReg[r].size());
            }
        }
    }
    s.occupancy.emplace_back("pending_broadcasts",
                             pendingBroadcasts.size());
    s.occupancy.emplace_back("storm_count", stormCount);
    if (tr)
        s.recentEvents = tr->lastEvents(16);
    return s;
}

bool
LpsuEngine::llfuRequest(const Instruction &inst)
{
    const bool pipelined = inst.op != Op::DIV && inst.op != Op::REM &&
                           inst.op != Op::FDIV;
    for (auto &unitFree : llfuFree) {
        if (unitFree <= cycle) {
            unitFree = pipelined ? cycle + 1 : cycle + inst.traits().latency;
            return true;
        }
    }
    return false;
}

/**
 * Consume any CIR this iteration never read (a dynamically skipped
 * read, e.g. a guarded use as in the paper's mm kernel): the value
 * must still flow through the lane so the chain stays connected.
 * Returns false (and sets @p stall) when the producer has not pushed
 * yet.
 */
bool
LpsuEngine::drainUnreadCirs(unsigned lane_idx, Context &ctx, Stall &stall)
{
    for (unsigned r = 1; r < numArchRegs; r++) {
        if (!si.isCir[r] || ctx.cirConsumed[r])
            continue;
        const auto value = cibIn(lane_idx).consume(static_cast<RegId>(r),
                                                   ctx.iter);
        if (!value) {
            stall = Stall::Cir;
            return false;
        }
        // Forward-only: do not clobber a value the body wrote on a
        // path that skipped the read.
        if (!ctx.cirWritten[r])
            ctx.regs.set(static_cast<RegId>(r), *value);
        ctx.cirConsumed[r] = true;
        stats.add("cib_consumes");
        XTRACE(tr, absCycle(), TraceComp::Cib, lane_idx,
               TraceKind::CibConsume, static_cast<i64>(r), ctx.iter);
    }
    return true;
}

/** End-of-body handling. Returns true when the context made progress. */
bool
LpsuEngine::finishBody(unsigned lane_idx, Context &ctx, Stall &stall)
{
    if (si.ordersRegisters() && !drainUnreadCirs(lane_idx, ctx, stall))
        return false;

    if (si.ordersMemory()) {
        if (ctx.iter != nextToCommit) {
            stall = Stall::CommitWait;
            return false;
        }
        if (ctx.lsq.hasStores()) {
            if (memPortsLeft == 0) {
                stall = Stall::MemPort;
                return false;
            }
            memPortsLeft--;
            const LsqAccess st = ctx.lsq.popOldestStore();
            mem.write(st.addr, st.size, st.value);
            dcache.access(st.addr, true);
            stats.add("lsq_drain_stores");
            XTRACE(tr, absCycle(), TraceComp::Lsq, lane_idx,
                   TraceKind::LsqDrain, static_cast<i64>(st.addr), ctx.iter);
            broadcastStore(st.addr, st.size, ctx.iter);
            return true;
        }
        // ORM communicates CIRs at commit (a squash after an early
        // push could leak a wrong value to the consumer).
        if (si.ordersRegisters()) {
            for (unsigned r = 1; r < numArchRegs; r++) {
                if (si.isCir[r] && !ctx.cirPushed[r]) {
                    if (cibOut(lane_idx).full(static_cast<RegId>(r)) ||
                        (inj.enabled() && inj.forceCibFull())) {
                        stall = Stall::CibFull;
                        return false;
                    }
                    pushCir(lane_idx, ctx, static_cast<RegId>(r),
                            ctx.regs.get(static_cast<RegId>(r)));
                }
            }
        }
        // Data-dependent exit: the committing (architecturally
        // non-speculative) iteration samples its exit flag; a
        // non-zero flag ends the loop and cancels every buffered
        // iteration beyond it — their stores never left the LSQs.
        if (si.dataDepExit &&
            ctx.regs.get(si.boundReg) != 0) {
            exitFlag = ctx.regs.get(si.boundReg);
            bound = ctx.iter + 1;
            if (trace) {
                *trace << "[lpsu] data-dependent exit at iteration "
                       << ctx.iter << " @ cycle " << cycle << "\n";
            }
            for (auto &lane : lanes) {
                for (auto &other : lane.ctxs) {
                    if (other.active && other.iter > ctx.iter) {
                        other.active = false;
                        other.bodyDone = false;
                        other.lsq.clear();
                        stats.add("cancelled_iterations");
                    }
                }
            }
        }
        // Commit barrier for injected broadcast delays: once this
        // iteration commits, the next one turns non-speculative and
        // stops recording loads, so every in-flight broadcast must
        // land first.
        flushPendingBroadcasts();
        completeIteration(ctx);
        return true;
    }

    // or: push any CIRs whose last write was skipped or not early-safe.
    if (si.ordersRegisters()) {
        for (unsigned r = 1; r < numArchRegs; r++) {
            if (si.isCir[r] && !ctx.cirPushed[r]) {
                if (cibOut(lane_idx).full(static_cast<RegId>(r)) ||
                    (inj.enabled() && inj.forceCibFull())) {
                    stall = Stall::CibFull;
                    return false;
                }
                pushCir(lane_idx, ctx, static_cast<RegId>(r),
                        ctx.regs.get(static_cast<RegId>(r)));
            }
        }
    }
    completeIteration(ctx);
    return true;
}

Stall
LpsuEngine::execInst(unsigned lane_idx, Context &ctx)
{
    const size_t index = (ctx.pc - si.bodyStart) / 4;
    XL_ASSERT(index < si.body.size(), "lane pc escaped the loop body");
    const Instruction &inst = si.body[index];

    if (inst.op == Op::HALT)
        fatal("halt inside an xloop body");

    // First issue after a squash: close the squash/replay pair.
    if (ctx.pendingReplay) {
        ctx.pendingReplay = false;
        XTRACE(tr, absCycle(), TraceComp::Lane, lane_idx,
               TraceKind::Replay, ctx.iter, 0);
    }

    // 1. CIR consumption: the first read of a CIR in an iteration
    //    takes the value from the inbound CIB (or stalls).
    RegId srcs[2];
    const unsigned numSrcs = inst.srcRegs(srcs);
    if (si.ordersRegisters()) {
        for (unsigned i = 0; i < numSrcs; i++) {
            const RegId r = srcs[i];
            if (!si.isCir[r] || ctx.cirConsumed[r])
                continue;
            if (ctx.cirWritten[r])
                continue;  // body wrote first: use its own value
            const auto value = cibIn(lane_idx).consume(r, ctx.iter);
            if (!value)
                return Stall::Cir;
            ctx.regs.set(r, *value);
            ctx.snapshot.set(r, *value);
            ctx.cirConsumed[r] = true;
            ctx.regReady[r] = cycle;
            stats.add("cib_consumes");
        }
    }

    // 2. RAW hazards against the lane scoreboard.
    for (unsigned i = 0; i < numSrcs; i++)
        if (ctx.regReady[srcs[i]] > cycle)
            return Stall::Raw;

    // 3. Early CIB push pre-check (xloop.or only; see finishBody for
    //    the orm commit-time path).
    const RegId dst = inst.destReg();
    const bool earlyPush =
        si.pattern == LoopPattern::OR && dst < numArchRegs &&
        si.isCir[dst] && ctx.pc == si.lastCirWritePc[dst] &&
        si.earlyPushOk[dst] && !ctx.cirPushed[dst];
    if (earlyPush && (cibOut(lane_idx).full(dst) ||
                      (inj.enabled() && inj.forceCibFull())))
        return Stall::CibFull;

    // 4. Resource checks.
    const bool spec = si.ordersMemory() && ctx.iter != nextToCommit;
    bool usePort = false;
    Addr memAddr = 0;
    if (inst.isLlfu() && !llfuRequest(inst))
        return Stall::Llfu;
    if (inst.isMem()) {
        if (inst.isAmo())
            memAddr = ctx.regs.get(inst.rs1);
        else
            memAddr = static_cast<Addr>(ctx.regs.get(inst.rs1) + inst.imm);

        if (spec) {
            if (inst.isAmo())
                return Stall::AmoWait;
            if (inst.isStore()) {
                if (ctx.lsq.storesFull() ||
                    (inj.enabled() && inj.forceLsqFull()))
                    return Stall::LsqFull;
            } else {
                if (ctx.lsq.loadsFull() ||
                    (inj.enabled() && inj.forceLsqFull()))
                    return Stall::LsqFull;
                if (!ctx.lsq.fullyCovered(memAddr, inst.op == Op::LW ? 4 :
                                          (inst.op == Op::LH ||
                                           inst.op == Op::LHU) ? 2 : 1)) {
                    if (memPortsLeft == 0)
                        return Stall::MemPort;
                    usePort = true;
                }
            }
        } else {
            if (memPortsLeft == 0)
                return Stall::MemPort;
            usePort = true;
        }
    }

    // 5. Execute.
    LaneMem laneMem;
    laneMem.mem = &mem;
    laneMem.lsq = &ctx.lsq;
    laneMem.buffered = spec;
    laneMem.crossLane = cfg.interLaneForwarding;
    std::vector<const LaneLsq *> older;
    if (spec && cfg.interLaneForwarding) {
        for (const auto &lane : lanes)
            for (const auto &other : lane.ctxs)
                if (other.active && other.iter < ctx.iter)
                    older.push_back(&other.lsq);
        laneMem.olderLsqs = &older;
    }

    const StepResult step =
        ExecCore::step(inst, ctx.pc, ctx.regs, laneMem, cycle);
    laneInsts++;
    ctx.iterInsts++;
    stats.add("lane_insts");
    stats.add("ib_accesses");
    bool lsqOverflow = laneMem.overflowed;
    if (spec && inst.isLoad()) {
        if (ctx.lsq.pushLoad(step.memAddr, step.memSize,
                             laneMem.lastLoadValue))
            stats.add("lsq_loads");
        else
            lsqOverflow = true;
    }
    if (lsqOverflow) {
        // Structural overflow mid-instruction (only reachable under
        // injected pressure or future capacity changes): the
        // iteration's effects are still fully buffered, so squash
        // and retry instead of aborting the simulation. After a few
        // retries the context holds until it is the committing
        // iteration, which needs no buffering (see tickContext).
        stats.add("lsq_overflow_squashes");
        squash(ctx);
        ctx.overflowSquashes++;
        return Stall::LsqFull;
    }
    if (spec && inst.isStore())
        stats.add("lsq_stores");

    // 6. Timing.
    Cycle latency = inst.traits().latency;
    if (usePort) {
        memPortsLeft--;
        const bool isWrite = inst.isStore() || inst.isAmo();
        Cycle dlat = dcache.access(step.memAddr, isWrite);
        if (inj.enabled()) {
            const Cycle jitter = inj.memJitter();
            if (jitter > 0)
                stats.add("injected_jitter_cycles", jitter);
            dlat += jitter;
        }
        latency = 1 + dlat;  // AGEN + memory
        stats.add("lane_mem_accesses");
    }
    if (dst < numArchRegs) {
        ctx.regReady[dst] = cycle + latency;
        if (si.ordersRegisters() && si.isCir[dst])
            ctx.cirWritten[dst] = true;
    }

    // 7. Side channels: store broadcast, CIR push, dynamic bound.
    if (!spec && si.ordersMemory() && step.memAccess &&
        (inst.isStore() || inst.isAmo())) {
        broadcastStore(step.memAddr, step.memSize, ctx.iter);
    }
    if (earlyPush)
        pushCir(lane_idx, ctx, dst, ctx.regs.get(dst));
    if (si.dynamicBound && dst == si.boundReg) {
        const i64 newBound = static_cast<i32>(ctx.regs.get(si.boundReg));
        if (newBound > bound) {
            bound = newBound;
            stats.add("bound_updates");
        }
    }

    // 8. Control flow.
    ctx.busyUntil = cycle + 1 +
                    (step.branchTaken ? cfg.branchBubble : 0);
    ctx.pc = step.nextPc;
    if (ctx.pc == si.bodyEnd) {
        ctx.bodyDone = true;
    } else if (ctx.pc < si.bodyStart || ctx.pc > si.bodyEnd) {
        fatal("xloop body branched outside [L, xloop)");
    }
    // Superscalar lanes may issue another instruction this cycle
    // unless control flow redirected or the iteration ended.
    dualEligible = !step.branchTaken && !ctx.bodyDone;
    return Stall::None;
}

Stall
LpsuEngine::tickContext(unsigned lane_idx, Context &ctx)
{
    dualEligible = false;
    const bool serialized =
        si.ordersMemory() && serializedUntil > cycle;
    if (!ctx.active) {
        // Storm serialization: only the committing iteration may
        // start while the backoff window is open.
        if (serialized && orderedDispatch() &&
            lanes[lane_idx].laneNextIter[0] != nextToCommit)
            return Stall::Idle;
        const auto iter = nextIterFor(lane_idx);
        if (!iter)
            return Stall::Idle;
        activate(lanes[lane_idx], ctx, *iter);
        return Stall::None;
    }
    if (ctx.busyUntil > cycle)
        return Stall::None;  // pipeline occupied: counted as exec
    if (serialized && ctx.iter != nextToCommit)
        return Stall::CommitWait;  // hold speculation during the storm
    // Bounded retry after LSQ-overflow squashes: stop burning retries
    // and wait until this context is the committing iteration (which
    // executes unbuffered and cannot overflow).
    if (ctx.overflowSquashes >= 2 && si.ordersMemory() &&
        ctx.iter != nextToCommit)
        return Stall::LsqFull;

    // Mid-iteration promotion: drain buffered stores before the now
    // non-speculative lane touches memory directly.
    if (si.ordersMemory() && ctx.iter == nextToCommit &&
        ctx.lsq.hasStores()) {
        if (memPortsLeft == 0)
            return Stall::MemPort;
        memPortsLeft--;
        const LsqAccess st = ctx.lsq.popOldestStore();
        mem.write(st.addr, st.size, st.value);
        dcache.access(st.addr, true);
        stats.add("lsq_drain_stores");
        XTRACE(tr, absCycle(), TraceComp::Lsq, lane_idx,
               TraceKind::LsqDrain, static_cast<i64>(st.addr), ctx.iter);
        broadcastStore(st.addr, st.size, ctx.iter);
        if (!ctx.lsq.hasStores())
            ctx.lsq.clearLoads();  // non-speculative now
        return Stall::None;
    }

    if (ctx.bodyDone) {
        Stall stall = Stall::None;
        finishBody(lane_idx, ctx, stall);
        return stall;
    }
    return execInst(lane_idx, ctx);
}

/**
 * Attribute one lane-cycle to its outcome (busy or one stall kind) in
 * the per-loop profile and maintain the per-lane stall slice for the
 * trace: a slice opens when the stall kind changes and is emitted —
 * stamped at its end cycle, duration in a1 — when it closes. Exactly
 * one call per lane per engine cycle keeps the profiler invariant
 * busyCycles + sum(stallCycles) == lanes * engineCycles.
 */
void
LpsuEngine::observeLaneCycle(unsigned lane_idx, Stall outcome)
{
    if (prof) {
        if (outcome == Stall::None)
            prof->busyCycles++;
        else
            prof->stallCycles[static_cast<size_t>(outcome)]++;
    }
#ifndef XLOOPS_TRACE_DISABLED
    if (!tr || !tr->enabled())
        return;
    StallObs &obs = laneObs[lane_idx];
    if (obs.kind == outcome)
        return;
    if (obs.kind != Stall::None) {
        tr->emit(absCycle(), TraceComp::Lane, lane_idx,
                 TraceKind::LaneStall, static_cast<i64>(obs.kind),
                 static_cast<i64>(cycle - obs.since));
    }
    obs.kind = outcome;
    obs.since = cycle;
#endif
}

/** Occupancy histograms: profiler-gated so stats stay byte-identical
 *  when no observer is attached. */
void
LpsuEngine::observeOccupancy()
{
    if (!prof)
        return;
    u64 cibOcc = 0;
    for (const auto &cib : cibs)
        for (unsigned r = 1; r < numArchRegs; r++)
            cibOcc += cib.perReg[r].size();
    u64 lsqOcc = 0;
    for (const auto &lane : lanes)
        for (const auto &ctx : lane.ctxs)
            lsqOcc += ctx.lsq.numLoads() + ctx.lsq.numStores();
    prof->cibOccupancy.sample(cibOcc);
    prof->lsqOccupancy.sample(lsqOcc);
}

/** Close any stall slice still open when the engine drains. */
void
LpsuEngine::flushStallSlices()
{
#ifndef XLOOPS_TRACE_DISABLED
    if (!tr || !tr->enabled())
        return;
    for (unsigned l = 0; l < laneObs.size(); l++) {
        StallObs &obs = laneObs[l];
        if (obs.kind != Stall::None && cycle > obs.since) {
            tr->emit(absCycle(), TraceComp::Lane, l, TraceKind::LaneStall,
                     static_cast<i64>(obs.kind),
                     static_cast<i64>(cycle - obs.since));
        }
        obs.kind = Stall::None;
    }
#endif
}

LpsuResult
LpsuEngine::run()
{
    LpsuResult res;

    std::vector<unsigned> order(cfg.lanes);
    std::iota(order.begin(), order.end(), 0);

    while (!done()) {
        if (cycle > lpsuCycleLimit) {
            throw SimError(
                SimErrorKind::CycleLimit,
                strf("LPSU specialized execution exceeded ",
                     lpsuCycleLimit, " cycles"),
                snapshotState("lpsu cycle-limit valve"));
        }
        if (cfg.watchdogCycles > 0 &&
            cycle > lastCommitCycle + cfg.watchdogCycles) {
            throw SimError(
                SimErrorKind::Watchdog,
                strf("no iteration committed for ", cfg.watchdogCycles,
                     " cycles (", completed, " committed so far)"),
                snapshotState("lpsu no-commit watchdog"));
        }
        memPortsLeft = cfg.memPorts;

        if (stormFallbackPending)
            beginStormFallback();
        if (migratePending)
            capDispatchForMigration();
        if (inj.enabled())
            injectFaultsThisCycle();

        // Priority: ordered patterns give the non-speculative (lowest
        // iteration) lane first pick; uc rotates for fairness.
        if (orderedDispatch()) {
            std::sort(order.begin(), order.end(),
                      [this](unsigned a, unsigned b) {
                          auto key = [this](unsigned l) {
                              const auto &ctx = lanes[l].ctxs[0];
                              return ctx.active ? ctx.iter
                                                : std::numeric_limits<i64>::max();
                          };
                          return key(a) < key(b);
                      });
        } else {
            std::iota(order.begin(), order.end(), 0);
            std::rotate(order.begin(),
                        order.begin() + (cycle % cfg.lanes), order.end());
        }

        for (const unsigned laneIdx : order) {
            Lane &lane = lanes[laneIdx];
            // Vertical MT: try contexts round-robin; the first that
            // makes progress owns the issue slot this cycle.
            Stall firstStall = Stall::Idle;
            bool progressed = false;
            bool sawBusy = false;
            for (unsigned c = 0; c < lane.ctxs.size(); c++) {
                Context &ctx = lane.ctxs[(lane.rr + c) % lane.ctxs.size()];
                if (ctx.active && ctx.busyUntil > cycle) {
                    sawBusy = true;
                    continue;
                }
                const Stall stall = tickContext(laneIdx, ctx);
                ctx.lastStall = stall;
                if (stall == Stall::None) {
                    progressed = true;
                    lane.rr = (lane.rr + c + 1) % lane.ctxs.size();
                    // Superscalar lanes (extension): keep issuing from
                    // the same context within this cycle. No same-cycle
                    // bypass: a dependent instruction still waits.
                    for (unsigned extra = 1;
                         extra < cfg.laneIssueWidth && dualEligible &&
                         ctx.active && !ctx.bodyDone;
                         extra++) {
                        dualEligible = false;
                        if (execInst(laneIdx, ctx) != Stall::None)
                            break;
                        stats.add("lane_multi_issues");
                    }
                    break;
                }
                if (firstStall == Stall::Idle)
                    firstStall = stall;
            }
            if (progressed || sawBusy) {
                stats.add("lane_exec_cycles");
                observeLaneCycle(laneIdx, Stall::None);
            } else {
                stats.add(stallCounter(firstStall));
                observeLaneCycle(laneIdx, firstStall);
            }
        }
        observeOccupancy();
        cycle++;
    }
    flushStallSlices();
    if (prof) {
        prof->specIters += completed;
        prof->engineCycles += cycle;
    }

    res.execCycles = cycle;
    res.iterations = completed;
    res.laneInsts = laneInsts;
    res.squashes = squashes;
    res.finalIdx = static_cast<i32>(effBound() - 1);
    res.finalBound = static_cast<i32>(bound);
    res.boundReached = effBound() >= bound;
    if (stormFellBack) {
        // Partial progress is handed back exactly (index, bound,
        // CIRs, MIVs below); the caller resumes traditionally.
        res.fellBack = true;
        res.reason = FallbackReason::SquashStorm;
    }

    // Architectural hand-back: CIR values of the last iteration, the
    // (possibly grown) bound, the loop index, and the materialized
    // mutual induction variables. MIV write-back keeps xi pointers
    // consistent when execution migrates back to the GPP (adaptive
    // profiling) or when code continues from the post-loop values the
    // traditional path would have produced: the LMU computes
    // liveIn + increment x (iterations executed), the same narrow
    // multiply it uses per iteration.
    for (unsigned r = 1; r < numArchRegs; r++)
        if (finalCirValid[r])
            liveIns.set(static_cast<RegId>(r), finalCir[r]);
    const i64 idx0 = startIdx - 1;
    const i64 mivDelta = res.finalIdx - idx0;
    for (unsigned r = 1; r < numArchRegs; r++) {
        if (si.isMiv[r]) {
            liveIns.set(static_cast<RegId>(r),
                        liveIns.get(static_cast<RegId>(r)) +
                            static_cast<u32>(si.mivInc[r] * mivDelta));
        }
    }
    if (si.dataDepExit) {
        // The flag register carries the exiting iteration's value (or
        // zero when a capped profiling run stopped before any exit),
        // so the GPP's traditional re-execution of the xloop makes
        // the right decision.
        liveIns.set(si.boundReg, exitFlag);
    } else {
        liveIns.set(si.boundReg, static_cast<u32>(res.finalBound));
    }
    liveIns.set(si.idxReg, static_cast<u32>(res.finalIdx));
    stats.add("lpsu_exec_cycles", res.execCycles);
    return res;
}

} // namespace

// ---------------------------------------------------------------------
// Lpsu facade.
// ---------------------------------------------------------------------

Lpsu::Lpsu(const LpsuConfig &config, MainMemory &memory, L1Cache &dcache)
    : cfg(config), mem(memory), dcache(dcache), injector(config.faults)
{
}

LpsuResult
Lpsu::execute(const Program &prog, Addr xloopPc, RegFile &liveIns,
              u64 maxIters, Cycle traceBase)
{
    const ScanInfo si = scanXloop(prog, xloopPc, liveIns);

    LoopProfile *prof = profiler ? &profiler->loop(xloopPc) : nullptr;
    if (prof && prof->pattern.empty()) {
        prof->pattern = strf(patternName(si.pattern),
                             si.dynamicBound ? ".db" : "",
                             si.dataDepExit ? ".de" : "");
    }

    LpsuResult res;
    if (si.body.size() > cfg.ibEntries) {
        res.fellBack = true;
        res.reason = FallbackReason::BodyTooLarge;
        statGroup.add("ib_fallbacks");
        statGroup.add("lpsu_fallbacks");
        if (prof)
            prof->fallbacks++;
        return res;
    }

    const i64 idx0 = static_cast<i32>(liveIns.get(si.idxReg));
    i64 bound0 = static_cast<i32>(liveIns.get(si.boundReg));
    const i64 startIdx = idx0 + 1;
    if (si.dataDepExit) {
        // The "bound" register is an exit flag: run under a large
        // horizon until some committed iteration raises it.
        if (liveIns.get(si.boundReg) != 0) {
            res.finalIdx = static_cast<i32>(idx0);
            res.finalBound = static_cast<i32>(bound0);
            return res;  // the GPP's iteration already exited
        }
        bound0 = startIdx + (i64{1} << 40);
    }
    if (startIdx >= bound0 || maxIters == 0) {
        res.finalIdx = static_cast<i32>(idx0);
        res.finalBound = static_cast<i32>(bound0);
        res.boundReached = startIdx >= bound0;
        return res;
    }

    // Scan phase: write instructions (unless still resident from the
    // previous dynamic instance) and live-in registers, with one-time
    // renaming amortized over all iterations.
    Cycle scan = cfg.scanOverheadCycles + si.numLiveIns;
    if (residentPc != xloopPc) {
        scan += static_cast<Cycle>(si.body.size()) * cfg.scanCyclesPerInst;
        statGroup.add("scan_inst_writes", si.body.size());
        statGroup.add("scan_renames", si.body.size());
    }
    statGroup.add("scan_livein_writes", si.numLiveIns);
    statGroup.add("scans");
    residentPc = xloopPc;

    if (traceOut) {
        *traceOut << "[lpsu] scan xloop @ 0x" << std::hex << xloopPc
                  << std::dec << " pattern " << patternName(si.pattern)
                  << (si.dynamicBound ? ".db" : "")
                  << (si.dataDepExit ? ".de" : "") << ", "
                  << si.body.size() << " insts, " << si.numCirs
                  << " CIRs, " << scan << " scan cycles\n";
    }
    if (prof) {
        prof->invocations++;
        prof->scanCycles += scan;
    }
    XTRACE(tracer, traceBase + scan, TraceComp::Lmu, 0, TraceKind::ScanDone,
           static_cast<i64>(scan), static_cast<i64>(si.body.size()));
    LpsuEngine engine(cfg, mem, dcache, statGroup, injector, si, liveIns,
                      startIdx, bound0, maxIters, traceOut, tracer, prof,
                      traceBase + scan);
    res = engine.run();

    // Architectural-corruption fault class: deliberately flip one bit
    // in a hand-back register. Unlike the timing fault classes this
    // breaks architectural equivalence — it exists so the lockstep
    // checker has a real, seed-reproducible divergence to catch.
    if (const u32 c = injector.corruptHandBack()) {
        const RegId reg = static_cast<RegId>(c >> 8);
        const u32 bit = c & 31;
        liveIns.set(reg, liveIns.get(reg) ^ (1u << bit));
        statGroup.add("arch_corruptions");
        if (traceOut) {
            *traceOut << "[lpsu] FAULT arch-corrupt r" << unsigned{reg}
                      << " bit " << bit << "\n";
        }
    }

    res.scanCycles = scan;
    statGroup.add("lpsu_scan_cycles", scan);
    return res;
}

void
Lpsu::saveState(JsonWriter &w) const
{
    if (residentPc == ~Addr{0})
        w.field("resident_pc", "none");
    else
        w.field("resident_pc", static_cast<u64>(residentPc));
    w.key("injector").beginObject();
    injector.saveState(w);
    w.endObject();
    w.key("stats").beginObject();
    statGroup.saveState(w);
    w.endObject();
}

void
Lpsu::loadState(const JsonValue &v)
{
    const JsonValue &rp = v.at("resident_pc");
    residentPc = rp.kind() == JsonValue::Kind::String ? ~Addr{0}
                                                      : rp.asU64();
    injector.loadState(v.at("injector"));
    statGroup.loadState(v.at("stats"));
}

} // namespace xloops
