/**
 * @file
 * An assembled xrisc program image: text segment, data segments, and a
 * symbol table. Producible by the assembler or the compiler back end,
 * loadable into a simulated memory.
 */

#ifndef XLOOPS_ASM_PROGRAM_H
#define XLOOPS_ASM_PROGRAM_H

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace xloops {

class MainMemory;
class JsonWriter;
class JsonValue;

/** Default base address of the text segment. */
constexpr Addr textBaseDefault = 0x1000;

/** Default base address of the data segment. */
constexpr Addr dataBaseDefault = 0x100000;

/** An assembled program. */
class Program
{
  public:
    Addr textBase = textBaseDefault;
    Addr entry = textBaseDefault;

    /** Encoded instruction words, textBase + 4*i for word i. */
    std::vector<u32> text;

    struct DataChunk
    {
        Addr base;
        std::vector<u8> bytes;
    };
    std::vector<DataChunk> data;

    std::map<std::string, Addr> symbols;

    /** Address of @p name; throws FatalError when undefined. */
    Addr symbol(const std::string &name) const;

    bool hasSymbol(const std::string &name) const
    {
        return symbols.count(name) != 0;
    }

    /** Copy text and data segments into @p memory. */
    void loadInto(MainMemory &memory) const;

    /** Decode the instruction at @p pc. Throws on out-of-text pc. */
    Instruction fetch(Addr pc) const;

    /** True when @p pc lies inside the text segment. */
    bool inText(Addr pc) const
    {
        return pc >= textBase && pc < textBase + 4 * text.size();
    }

    /** Number of instructions in the text segment. */
    size_t numInsts() const { return text.size(); }

    /** Stable content hash (capsules verify replay uses the same
     *  image the failing run did). */
    u64 hash() const;

    /** Serialize the complete image (capsule embedding). */
    void saveState(JsonWriter &w) const;

    /** Inverse of saveState. */
    static Program fromJson(const JsonValue &v);
};

} // namespace xloops

#endif // XLOOPS_ASM_PROGRAM_H
