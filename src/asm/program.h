/**
 * @file
 * An assembled xrisc program image: text segment, data segments, and a
 * symbol table. Producible by the assembler or the compiler back end,
 * loadable into a simulated memory.
 */

#ifndef XLOOPS_ASM_PROGRAM_H
#define XLOOPS_ASM_PROGRAM_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace xloops {

class MainMemory;
class JsonWriter;
class JsonValue;
class Program;

/**
 * Densely predecoded text segment: one decoded Instruction per text
 * word, indexed by word address, built once at load. The simulate
 * loops (cpu/run.h, cpu/functional.cc, system/system.cc, the LPSU
 * scan in lpsu/lpsu.cc) fetch through this instead of re-running
 * Instruction::decode() on every dynamic instruction.
 *
 * fetch() has the exact semantics of Program::fetch(): same result
 * for every in-text word, same FatalError for misaligned or
 * out-of-text pcs, and the same decode error for a non-instruction
 * word (undecodable words are detected at build time but only fault
 * when actually fetched, matching the lazy path).
 */
class DecodedProgram
{
  public:
    DecodedProgram() = default;
    explicit DecodedProgram(const Program &prog);

    /** Decoded instruction at @p pc; throws like Program::fetch. */
    const Instruction &
    fetch(Addr pc) const
    {
        const size_t idx = static_cast<size_t>((pc - base) / 4);
        if (pc < base || pc % 4 != 0 || idx >= insts.size())
            badFetch(pc);
        if (!valid[idx])
            badDecode(idx);
        return insts[idx];
    }

    size_t numInsts() const { return insts.size(); }
    Addr textBase() const { return base; }

  private:
    [[noreturn]] void badFetch(Addr pc) const;
    [[noreturn]] void badDecode(size_t idx) const;

    Addr base = 0;
    std::vector<Instruction> insts;
    std::vector<bool> valid;   ///< decodable at build time
    std::vector<u32> words;    ///< raw words (exact error replay)
};

/** Default base address of the text segment. */
constexpr Addr textBaseDefault = 0x1000;

/** Default base address of the data segment. */
constexpr Addr dataBaseDefault = 0x100000;

/** An assembled program. */
class Program
{
  public:
    Addr textBase = textBaseDefault;
    Addr entry = textBaseDefault;

    /** Encoded instruction words, textBase + 4*i for word i. */
    std::vector<u32> text;

    struct DataChunk
    {
        Addr base;
        std::vector<u8> bytes;
    };
    std::vector<DataChunk> data;

    std::map<std::string, Addr> symbols;

    /** Address of @p name; throws FatalError when undefined. */
    Addr symbol(const std::string &name) const;

    bool hasSymbol(const std::string &name) const
    {
        return symbols.count(name) != 0;
    }

    /** Copy text and data segments into @p memory. */
    void loadInto(MainMemory &memory) const;

    /** Decode the instruction at @p pc. Throws on out-of-text pc. */
    Instruction fetch(Addr pc) const;

    /**
     * The predecoded image — the hot-path alternative to fetch().
     * Built on first use, cached, and shared by copies (the cache is
     * immutable once built). The text segment must not be mutated
     * after the first call; simulators only call this on fully
     * assembled programs, and each sweep worker owns its Program, so
     * the lazy build needs no locking.
     */
    const DecodedProgram &
    decoded() const
    {
        if (!decodedCache)
            decodedCache = std::make_shared<const DecodedProgram>(*this);
        return *decodedCache;
    }

    /** True when @p pc lies inside the text segment. */
    bool inText(Addr pc) const
    {
        return pc >= textBase && pc < textBase + 4 * text.size();
    }

    /** Number of instructions in the text segment. */
    size_t numInsts() const { return text.size(); }

    /** Stable content hash (capsules verify replay uses the same
     *  image the failing run did). */
    u64 hash() const;

    /** Serialize the complete image (capsule embedding). */
    void saveState(JsonWriter &w) const;

    /** Inverse of saveState. */
    static Program fromJson(const JsonValue &v);

  private:
    mutable std::shared_ptr<const DecodedProgram> decodedCache;
};

} // namespace xloops

#endif // XLOOPS_ASM_PROGRAM_H
