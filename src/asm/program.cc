#include "asm/program.h"

#include "common/json.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "mem/memory.h"

namespace xloops {

DecodedProgram::DecodedProgram(const Program &prog)
    : base(prog.textBase), words(prog.text)
{
    insts.reserve(words.size());
    valid.reserve(words.size());
    for (const u32 word : words) {
        try {
            insts.push_back(Instruction::decode(word));
            valid.push_back(true);
        } catch (const FatalError &) {
            // Preserve lazy-fetch semantics: a non-instruction word
            // only faults if the program actually reaches it.
            insts.push_back(Instruction{});
            valid.push_back(false);
        }
    }
}

void
DecodedProgram::badFetch(Addr pc) const
{
    fatal(strf("instruction fetch outside text segment: 0x", std::hex,
               pc));
}

void
DecodedProgram::badDecode(size_t idx) const
{
    // Re-run the raw decode so the error message is byte-identical to
    // the one Program::fetch would have produced.
    Instruction::decode(words[idx]);
    panic("undecodable word decoded on the second attempt");
}

Addr
Program::symbol(const std::string &name) const
{
    const auto it = symbols.find(name);
    if (it == symbols.end())
        fatal(strf("undefined symbol '", name, "'"));
    return it->second;
}

void
Program::loadInto(MainMemory &memory) const
{
    for (size_t i = 0; i < text.size(); i++)
        memory.writeWord(textBase + static_cast<Addr>(4 * i), text[i]);
    for (const auto &chunk : data)
        memory.loadBytes(chunk.base, chunk.bytes);
}

Instruction
Program::fetch(Addr pc) const
{
    if (!inText(pc) || pc % 4 != 0)
        fatal(strf("instruction fetch outside text segment: 0x", std::hex,
                   pc));
    return Instruction::decode(text[(pc - textBase) / 4]);
}

u64
Program::hash() const
{
    u64 h = mix64(textBase) ^ mix64(entry + 1);
    for (const u32 word : text)
        h = mix64(h ^ word);
    for (const auto &chunk : data) {
        h = mix64(h ^ chunk.base);
        for (const u8 b : chunk.bytes)
            h = mix64(h ^ b);
    }
    return h;
}

void
Program::saveState(JsonWriter &w) const
{
    w.field("text_base", static_cast<u64>(textBase));
    w.field("entry", static_cast<u64>(entry));
    std::vector<u8> bytes;
    bytes.reserve(text.size() * 4);
    for (const u32 word : text)
        for (unsigned i = 0; i < 4; i++)
            bytes.push_back(static_cast<u8>(word >> (8 * i)));
    w.field("text", hexEncode(bytes.data(), bytes.size()));
    w.key("data").beginArray();
    for (const auto &chunk : data) {
        w.beginObject();
        w.field("base", static_cast<u64>(chunk.base));
        w.field("bytes", hexEncode(chunk.bytes.data(), chunk.bytes.size()));
        w.endObject();
    }
    w.endArray();
    w.key("symbols").beginObject();
    for (const auto &[name, addr] : symbols)
        w.field(name, static_cast<u64>(addr));
    w.endObject();
}

Program
Program::fromJson(const JsonValue &v)
{
    Program p;
    p.textBase = static_cast<Addr>(v.at("text_base").asU64());
    p.entry = static_cast<Addr>(v.at("entry").asU64());
    const std::vector<u8> bytes = hexDecode(v.at("text").asString());
    if (bytes.size() % 4 != 0)
        fatal("capsule text segment is not word-aligned");
    p.text.reserve(bytes.size() / 4);
    for (size_t i = 0; i < bytes.size(); i += 4) {
        p.text.push_back(u32{bytes[i]} | (u32{bytes[i + 1]} << 8) |
                         (u32{bytes[i + 2]} << 16) |
                         (u32{bytes[i + 3]} << 24));
    }
    for (const JsonValue &cv : v.at("data").array()) {
        DataChunk chunk;
        chunk.base = static_cast<Addr>(cv.at("base").asU64());
        chunk.bytes = hexDecode(cv.at("bytes").asString());
        p.data.push_back(std::move(chunk));
    }
    for (const auto &[name, addr] : v.at("symbols").members())
        p.symbols[name] = static_cast<Addr>(addr.asU64());
    return p;
}

} // namespace xloops
