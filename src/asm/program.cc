#include "asm/program.h"

#include "common/log.h"
#include "mem/memory.h"

namespace xloops {

Addr
Program::symbol(const std::string &name) const
{
    const auto it = symbols.find(name);
    if (it == symbols.end())
        fatal(strf("undefined symbol '", name, "'"));
    return it->second;
}

void
Program::loadInto(MainMemory &memory) const
{
    for (size_t i = 0; i < text.size(); i++)
        memory.writeWord(textBase + static_cast<Addr>(4 * i), text[i]);
    for (const auto &chunk : data)
        memory.loadBytes(chunk.base, chunk.bytes);
}

Instruction
Program::fetch(Addr pc) const
{
    if (!inText(pc) || pc % 4 != 0)
        fatal(strf("instruction fetch outside text segment: 0x", std::hex,
                   pc));
    return Instruction::decode(text[(pc - textBase) / 4]);
}

} // namespace xloops
