/**
 * @file
 * Two-pass text assembler for the xrisc ISA with XLOOPS extensions.
 *
 * Syntax overview:
 *
 *     .text                         # section switches
 *   _start:
 *     li    r4, 1000                # pseudo: addi / lui+ori
 *     la    r5, src                 # pseudo: lui+ori (always 2 insns)
 *   loop:
 *     lw    r6, 0(r5)
 *     addiu.xi r5, 4                # cross-iteration add
 *     xloop.uc r1, r2, loop         # body = [loop, here)
 *     xloop.or r1, r2, loop, nohint # suppress specialization hint
 *     amoadd r3, r7, (r8)           # rd, operand, (addr)
 *     halt
 *     .data
 *   src: .word 1, 2, 3, sym         # 32-bit words or symbol addresses
 *   buf: .space 400                 # zero bytes
 *     .byte 1, 2     .half 3, 4     .align 4
 *
 * Comments start with '#' or ';'. Pseudo-instructions: li, la, mov, j,
 * beqz, bnez, bgt, ble, not, neg, sub-with-imm via addi of negative.
 */

#ifndef XLOOPS_ASM_ASSEMBLER_H
#define XLOOPS_ASM_ASSEMBLER_H

#include <string>

#include "asm/program.h"

namespace xloops {

/**
 * Assemble @p source into a program image.
 *
 * @param source  complete assembly text
 * @param textBase base address for .text (entry = first text address)
 * @param dataBase base address for .data
 * @return the assembled program
 * @throws FatalError with a line-numbered message on any syntax error,
 *         undefined symbol, or out-of-range immediate.
 */
Program assemble(const std::string &source,
                 Addr textBase = textBaseDefault,
                 Addr dataBase = dataBaseDefault);

} // namespace xloops

#endif // XLOOPS_ASM_ASSEMBLER_H
