#include "asm/assembler.h"

#include <cctype>
#include <map>
#include <optional>

#include "common/log.h"

namespace xloops {

namespace {

/** Mnemonic -> opcode map built from the trait table. */
const std::map<std::string, Op> &
mnemonicMap()
{
    static const std::map<std::string, Op> map = [] {
        std::map<std::string, Op> m;
        for (unsigned i = 0; i < numOpcodes; i++) {
            const auto op = static_cast<Op>(i);
            m[opTraits(op).mnemonic] = op;
        }
        return m;
    }();
    return map;
}

struct Token
{
    enum Kind { Reg, Imm, Sym, MemRef, AmoRef } kind;
    RegId reg = 0;      // Reg, AmoRef; MemRef base
    i64 imm = 0;        // Imm; MemRef offset
    std::string sym;    // Sym; MemRef symbolic offset when !sym.empty()
};

/** One parsed source item: either an instruction or a data emission. */
struct Item
{
    enum Kind { Inst, Data } kind = Inst;
    // Inst:
    std::string mnemonic;
    std::vector<Token> operands;
    bool hint = true;
    // Data: raw bytes, or a symbol slot (4 bytes patched in pass 2).
    std::vector<u8> bytes;
    std::string wordSym;
    // Common:
    Addr addr = 0;
    int line = 0;
};

class Parser
{
  public:
    Parser(const std::string &source, Addr text_base, Addr data_base)
        : src(source), textBase(text_base), dataBase(data_base)
    {}

    Program run();

  private:
    [[noreturn]] void
    err(const std::string &msg) const
    {
        fatal(strf("asm line ", lineNo, ": ", msg));
    }

    std::optional<RegId> parseReg(const std::string &tok) const;
    i64 parseNumber(const std::string &tok, bool &ok) const;
    Token parseOperand(const std::string &tok) const;
    std::vector<std::string> splitOperands(const std::string &rest) const;

    void handleLine(std::string line);
    void handleDirective(const std::string &dir, const std::string &rest);
    void handleInst(const std::string &mnem, const std::string &rest);
    void emitInst(const Item &item);

    /** Expand pseudo-instructions; true when @p mnem was a pseudo. */
    bool expandPseudo(const std::string &mnem,
                      const std::vector<std::string> &ops);

    void addInstItem(const std::string &mnem, std::vector<Token> operands,
                     bool hint = true);

    Token symOrImm(const std::string &tok) const;

    // Pass 2:
    Instruction
    encodeItem(const Item &item, const std::map<std::string, Addr> &syms);
    Addr resolve(const Token &tok, const std::map<std::string, Addr> &syms,
                 int line) const;

    const std::string &src;
    Addr textBase;
    Addr dataBase;
    int lineNo = 0;
    bool inTextSec = true;

    std::vector<Item> textItems;
    std::vector<Item> dataItems;
    Addr textCursor = 0;   // byte offset within .text
    Addr dataCursor = 0;   // byte offset within .data
    std::map<std::string, Addr> symbols;
};

std::optional<RegId>
Parser::parseReg(const std::string &tok) const
{
    if (tok == "zero")
        return RegId{0};
    if (tok.size() >= 2 && tok[0] == 'r' &&
        std::isdigit(static_cast<unsigned char>(tok[1]))) {
        unsigned value = 0;
        for (size_t i = 1; i < tok.size(); i++) {
            if (!std::isdigit(static_cast<unsigned char>(tok[i])))
                return std::nullopt;
            value = value * 10 + (tok[i] - '0');
        }
        if (value >= numArchRegs)
            err(strf("register ", tok, " out of range"));
        return static_cast<RegId>(value);
    }
    return std::nullopt;
}

i64
Parser::parseNumber(const std::string &tok, bool &ok) const
{
    ok = false;
    if (tok.empty())
        return 0;
    size_t pos = 0;
    bool neg = false;
    if (tok[pos] == '-') {
        neg = true;
        pos++;
    }
    if (pos >= tok.size())
        return 0;
    i64 value = 0;
    if (tok.compare(pos, 2, "0x") == 0 || tok.compare(pos, 2, "0X") == 0) {
        pos += 2;
        if (pos >= tok.size())
            return 0;
        for (; pos < tok.size(); pos++) {
            const char c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(tok[pos])));
            if (c >= '0' && c <= '9')
                value = value * 16 + (c - '0');
            else if (c >= 'a' && c <= 'f')
                value = value * 16 + (c - 'a' + 10);
            else
                return 0;
        }
    } else {
        for (; pos < tok.size(); pos++) {
            if (!std::isdigit(static_cast<unsigned char>(tok[pos])))
                return 0;
            value = value * 10 + (tok[pos] - '0');
        }
    }
    ok = true;
    return neg ? -value : value;
}

Token
Parser::symOrImm(const std::string &tok) const
{
    bool ok = false;
    const i64 value = parseNumber(tok, ok);
    if (ok)
        return Token{Token::Imm, 0, value, ""};
    return Token{Token::Sym, 0, 0, tok};
}

Token
Parser::parseOperand(const std::string &tok) const
{
    if (tok.empty())
        err("empty operand");

    // AMO address operand: (rN)
    if (tok.front() == '(' && tok.back() == ')') {
        const auto reg = parseReg(tok.substr(1, tok.size() - 2));
        if (!reg)
            err(strf("bad amo address operand ", tok));
        return Token{Token::AmoRef, *reg, 0, ""};
    }

    // Memory reference: offset(rN) or sym(rN)
    const auto open = tok.find('(');
    if (open != std::string::npos && tok.back() == ')') {
        const std::string off = tok.substr(0, open);
        const auto reg = parseReg(tok.substr(open + 1,
                                             tok.size() - open - 2));
        if (!reg)
            err(strf("bad base register in ", tok));
        Token t = off.empty() ? Token{Token::Imm, 0, 0, ""} : symOrImm(off);
        t.kind = Token::MemRef;
        t.reg = *reg;
        return t;
    }

    if (const auto reg = parseReg(tok))
        return Token{Token::Reg, *reg, 0, ""};
    return symOrImm(tok);
}

std::vector<std::string>
Parser::splitOperands(const std::string &rest) const
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : rest) {
        if (c == ',') {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            continue;
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

void
Parser::addInstItem(const std::string &mnem, std::vector<Token> operands,
                    bool hint)
{
    if (!inTextSec)
        err("instruction outside .text");
    Item item;
    item.kind = Item::Inst;
    item.mnemonic = mnem;
    item.operands = std::move(operands);
    item.hint = hint;
    item.addr = textBase + textCursor;
    item.line = lineNo;
    textItems.push_back(std::move(item));
    textCursor += 4;
}

bool
Parser::expandPseudo(const std::string &mnem,
                     const std::vector<std::string> &ops)
{
    auto tok = [&](size_t i) { return parseOperand(ops.at(i)); };
    auto regTok = [](RegId r) { return Token{Token::Reg, r, 0, ""}; };
    auto immTok = [](i64 v) { return Token{Token::Imm, 0, v, ""}; };

    if (mnem == "li") {
        if (ops.size() != 2)
            err("li needs rd, imm");
        const Token rd = tok(0);
        const Token val = tok(1);
        if (rd.kind != Token::Reg || val.kind != Token::Imm)
            err("li needs rd, literal");
        if (fitsSigned(val.imm, 14)) {
            addInstItem("addi", {rd, regTok(0), immTok(val.imm)});
        } else {
            const u32 uv = static_cast<u32>(val.imm);
            addInstItem("lui", {rd, immTok(uv >> 13)});
            if ((uv & 0x1fff) != 0)
                addInstItem("ori", {rd, rd, immTok(uv & 0x1fff)});
        }
        return true;
    }
    if (mnem == "la") {
        if (ops.size() != 2)
            err("la needs rd, symbol");
        const Token rd = tok(0);
        Token sym = tok(1);
        if (rd.kind != Token::Reg || sym.kind != Token::Sym)
            err("la needs rd, symbol");
        // Fixed two-instruction expansion so pass-1 sizing is stable.
        Token hi = sym;
        hi.sym = "%hi:" + sym.sym;
        Token lo = sym;
        lo.sym = "%lo:" + sym.sym;
        addInstItem("lui", {rd, hi});
        addInstItem("ori", {rd, rd, lo});
        return true;
    }
    if (mnem == "mov") {
        addInstItem("addi", {tok(0), tok(1), immTok(0)});
        return true;
    }
    if (mnem == "j") {
        addInstItem("jal", {regTok(0), tok(0)});
        return true;
    }
    if (mnem == "beqz") {
        addInstItem("beq", {tok(0), regTok(0), tok(1)});
        return true;
    }
    if (mnem == "bnez") {
        addInstItem("bne", {tok(0), regTok(0), tok(1)});
        return true;
    }
    if (mnem == "bgt") {
        addInstItem("blt", {tok(1), tok(0), tok(2)});
        return true;
    }
    if (mnem == "ble") {
        addInstItem("bge", {tok(1), tok(0), tok(2)});
        return true;
    }
    if (mnem == "not") {
        addInstItem("nor", {tok(0), tok(1), regTok(0)});
        return true;
    }
    if (mnem == "neg") {
        addInstItem("sub", {tok(0), regTok(0), tok(1)});
        return true;
    }
    return false;
}

void
Parser::handleInst(const std::string &mnem, const std::string &rest)
{
    const auto ops = splitOperands(rest);
    if (expandPseudo(mnem, ops))
        return;
    if (mnemonicMap().count(mnem) == 0)
        err(strf("unknown mnemonic '", mnem, "'"));

    std::vector<Token> toks;
    toks.reserve(ops.size());
    bool hint = true;
    for (const auto &o : ops) {
        if (o == "nohint") {
            hint = false;
            continue;
        }
        toks.push_back(parseOperand(o));
    }
    addInstItem(mnem, std::move(toks), hint);
}

void
Parser::handleDirective(const std::string &dir, const std::string &rest)
{
    auto addData = [this](std::vector<u8> bytes, std::string word_sym = "") {
        Item item;
        item.kind = Item::Data;
        item.bytes = std::move(bytes);
        item.wordSym = std::move(word_sym);
        item.addr = dataBase + dataCursor;
        item.line = lineNo;
        dataCursor += item.wordSym.empty()
                      ? static_cast<Addr>(item.bytes.size()) : 4;
        dataItems.push_back(std::move(item));
    };

    if (dir == ".text") {
        inTextSec = true;
        return;
    }
    if (dir == ".data") {
        inTextSec = false;
        return;
    }
    if (inTextSec && (dir == ".word" || dir == ".space" || dir == ".byte" ||
                      dir == ".half" || dir == ".align" || dir == ".float"))
        err("data directive inside .text");

    if (dir == ".word" || dir == ".float") {
        for (const auto &o : splitOperands(rest)) {
            bool ok = false;
            if (dir == ".float") {
                // Parse as decimal float literal.
                try {
                    const float f = std::stof(o);
                    u32 v;
                    static_assert(sizeof(v) == sizeof(f));
                    __builtin_memcpy(&v, &f, 4);
                    addData({static_cast<u8>(v), static_cast<u8>(v >> 8),
                             static_cast<u8>(v >> 16),
                             static_cast<u8>(v >> 24)});
                    continue;
                } catch (const std::exception &) {
                    err(strf("bad float literal ", o));
                }
            }
            const i64 value = parseNumber(o, ok);
            if (ok) {
                const u32 v = static_cast<u32>(value);
                addData({static_cast<u8>(v), static_cast<u8>(v >> 8),
                         static_cast<u8>(v >> 16), static_cast<u8>(v >> 24)});
            } else {
                addData({}, o);  // symbol slot, patched in pass 2
            }
        }
        return;
    }
    if (dir == ".half" || dir == ".byte") {
        const unsigned width = (dir == ".half") ? 2 : 1;
        for (const auto &o : splitOperands(rest)) {
            bool ok = false;
            const i64 value = parseNumber(o, ok);
            if (!ok)
                err(strf("bad ", dir, " literal ", o));
            std::vector<u8> b;
            for (unsigned i = 0; i < width; i++)
                b.push_back(static_cast<u8>(value >> (8 * i)));
            addData(std::move(b));
        }
        return;
    }
    if (dir == ".space") {
        bool ok = false;
        const i64 n = parseNumber(rest, ok);
        if (!ok || n < 0)
            err("bad .space size");
        addData(std::vector<u8>(static_cast<size_t>(n), 0));
        return;
    }
    if (dir == ".align") {
        bool ok = false;
        const i64 a = parseNumber(rest, ok);
        if (!ok || a <= 0 || (a & (a - 1)))
            err("bad .align");
        const Addr mask = static_cast<Addr>(a - 1);
        const Addr pad = (static_cast<Addr>(a) - (dataCursor & mask)) & mask;
        if (pad)
            addData(std::vector<u8>(pad, 0));
        return;
    }
    err(strf("unknown directive '", dir, "'"));
}

void
Parser::handleLine(std::string line)
{
    // Strip comments.
    for (const char marker : {'#', ';'}) {
        const auto pos = line.find(marker);
        if (pos != std::string::npos)
            line.erase(pos);
    }

    // Peel off leading labels.
    for (;;) {
        size_t i = 0;
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            i++;
        size_t j = i;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) ||
                line[j] == '_' || line[j] == '.'))
            j++;
        if (j < line.size() && line[j] == ':' && j > i && line[i] != '.') {
            const std::string label = line.substr(i, j - i);
            if (symbols.count(label))
                err(strf("duplicate label '", label, "'"));
            symbols[label] = inTextSec ? textBase + textCursor
                                       : dataBase + dataCursor;
            line.erase(0, j + 1);
            continue;
        }
        break;
    }

    // Tokenize mnemonic/directive.
    size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
        i++;
    if (i >= line.size())
        return;
    size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j])))
        j++;
    const std::string head = line.substr(i, j - i);
    const std::string rest = (j < line.size()) ? line.substr(j + 1) : "";

    if (head[0] == '.')
        handleDirective(head, rest);
    else
        handleInst(head, rest);
}

Addr
Parser::resolve(const Token &tok, const std::map<std::string, Addr> &syms,
                int line) const
{
    std::string name = tok.sym;
    bool hi = false;
    bool lo = false;
    if (name.rfind("%hi:", 0) == 0) {
        hi = true;
        name = name.substr(4);
    } else if (name.rfind("%lo:", 0) == 0) {
        lo = true;
        name = name.substr(4);
    }
    const auto it = syms.find(name);
    if (it == syms.end())
        fatal(strf("asm line ", line, ": undefined symbol '", name, "'"));
    if (hi)
        return it->second >> 13;
    if (lo)
        return it->second & 0x1fff;
    return it->second;
}

Instruction
Parser::encodeItem(const Item &item, const std::map<std::string, Addr> &syms)
{
    const Op op = mnemonicMap().at(item.mnemonic);
    const OpTraits &tr = opTraits(op);
    Instruction inst;
    inst.op = op;
    inst.hint = item.hint;
    lineNo = item.line;

    auto immOf = [&](const Token &t) -> i64 {
        if (t.kind == Token::Imm)
            return t.imm;
        if (t.kind == Token::Sym || t.kind == Token::MemRef) {
            if (t.kind == Token::MemRef && t.sym.empty())
                return t.imm;
            return static_cast<i64>(resolve(t, syms, item.line));
        }
        err("expected immediate or symbol operand");
    };
    auto regOf = [&](const Token &t) -> RegId {
        if (t.kind != Token::Reg)
            err(strf("expected register operand in ", item.mnemonic));
        return t.reg;
    };
    auto wordOffset = [&](const Token &t) -> i64 {
        const i64 target = immOf(t);
        const i64 delta = target - static_cast<i64>(item.addr);
        if (delta % 4 != 0)
            err("misaligned branch target");
        return delta / 4;
    };
    const auto &ops = item.operands;
    auto need = [&](size_t n) {
        if (ops.size() != n)
            err(strf(item.mnemonic, " expects ", n, " operands, got ",
                     ops.size()));
    };

    switch (tr.format) {
      case Format::R:
        need(3);
        inst.rd = regOf(ops[0]);
        inst.rs1 = regOf(ops[1]);
        inst.rs2 = regOf(ops[2]);
        break;
      case Format::A:
        need(3);
        inst.rd = regOf(ops[0]);
        inst.rs2 = regOf(ops[1]);
        if (ops[2].kind != Token::AmoRef)
            err("amo needs (rN) address operand");
        inst.rs1 = ops[2].reg;
        break;
      case Format::I:
        if (tr.fuClass == FuClass::Load) {
            need(2);
            inst.rd = regOf(ops[0]);
            if (ops[1].kind != Token::MemRef)
                err("load needs offset(base) operand");
            inst.rs1 = ops[1].reg;
            inst.imm = static_cast<i32>(immOf(ops[1]));
        } else if (op == Op::JALR) {
            need(2);
            inst.rd = regOf(ops[0]);
            inst.rs1 = regOf(ops[1]);
        } else {
            need(3);
            inst.rd = regOf(ops[0]);
            inst.rs1 = regOf(ops[1]);
            inst.imm = static_cast<i32>(immOf(ops[2]));
        }
        break;
      case Format::S:
        need(2);
        inst.rs2 = regOf(ops[0]);
        if (ops[1].kind != Token::MemRef)
            err("store needs offset(base) operand");
        inst.rs1 = ops[1].reg;
        inst.imm = static_cast<i32>(immOf(ops[1]));
        break;
      case Format::U:
      case Format::C:
        need(2);
        inst.rd = regOf(ops[0]);
        inst.imm = static_cast<i32>(immOf(ops[1]));
        break;
      case Format::B:
        need(3);
        inst.rs1 = regOf(ops[0]);
        inst.rs2 = regOf(ops[1]);
        inst.imm = static_cast<i32>(wordOffset(ops[2]));
        break;
      case Format::J:
        need(2);
        inst.rd = regOf(ops[0]);
        inst.imm = static_cast<i32>(wordOffset(ops[1]));
        break;
      case Format::X:
        need(3);
        inst.rd = regOf(ops[0]);
        inst.rs1 = regOf(ops[1]);
        inst.imm = static_cast<i32>(wordOffset(ops[2]));
        if (inst.imm >= 0)
            err("xloop body label must precede the xloop instruction");
        break;
      case Format::XI:
        need(2);
        inst.rd = regOf(ops[0]);
        if (op == Op::ADDIU_XI)
            inst.imm = static_cast<i32>(immOf(ops[1]));
        else
            inst.rs2 = regOf(ops[1]);
        break;
      case Format::N:
        need(0);
        break;
    }
    return inst;
}

Program
Parser::run()
{
    int n = 0;
    std::string line;
    for (size_t i = 0; i <= src.size(); i++) {
        if (i == src.size() || src[i] == '\n') {
            lineNo = ++n;
            handleLine(line);
            line.clear();
        } else {
            line += src[i];
        }
    }

    Program prog;
    prog.textBase = textBase;
    prog.entry = textBase;
    prog.symbols = symbols;

    for (const auto &item : textItems) {
        const Instruction inst = encodeItem(item, symbols);
        prog.text.push_back(inst.encode());
    }

    Program::DataChunk chunk;
    chunk.base = dataBase;
    for (const auto &item : dataItems) {
        if (!item.wordSym.empty()) {
            Token t{Token::Sym, 0, 0, item.wordSym};
            const u32 v = resolve(t, symbols, item.line);
            for (unsigned b = 0; b < 4; b++)
                chunk.bytes.push_back(static_cast<u8>(v >> (8 * b)));
        } else {
            chunk.bytes.insert(chunk.bytes.end(), item.bytes.begin(),
                               item.bytes.end());
        }
    }
    if (!chunk.bytes.empty())
        prog.data.push_back(std::move(chunk));
    return prog;
}

} // namespace

Program
assemble(const std::string &source, Addr textBase, Addr dataBase)
{
    Parser parser(source, textBase, dataBase);
    return parser.run();
}

} // namespace xloops
